// Tests for the refinement core: address map, bus plan, control/data/
// architecture refinement, and end-to-end functional equivalence of all four
// implementation models.
#include <gtest/gtest.h>

#include "printer/printer.h"
#include "refine/refiner.h"
#include "sim/equivalence.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

// A two-component partition of the abc example: B moved to the ASIC.
struct AbcSetup {
  Specification spec;
  AccessGraph graph;
  Partition part;

  explicit AbcSetup(uint64_t x_seed)
      : spec(testing::abc_spec(x_seed)),
        graph(build_access_graph(spec)),
        part(spec, Allocation::proc_plus_asic()) {
    // The paper's Figure 1(c): B and x on the ASIC, A and C on the PROC.
    part.assign_behavior("B", 1);
    part.assign_var("x", 1);
    part.auto_assign_vars(graph);
  }
};

TEST(AddressMap, ContiguousPerComponent) {
  AbcSetup s(3);
  AddressMap m(s.part, ProtocolStyle::FullHandshake);
  // Two variables -> two slots; both addressable.
  EXPECT_EQ(m.total_slots(), 2u);
  EXPECT_NE(m.addr_of("x"), m.addr_of("r"));
  EXPECT_EQ(m.beats_of("x"), 1u);
  uint64_t lo = 0, hi = 0;
  bool any = m.range_of(0, lo, hi) || m.range_of(1, lo, hi);
  EXPECT_TRUE(any);
  EXPECT_THROW((void)m.addr_of("ghost"), SpecError);
}

TEST(AddressMap, ByteSerialBeats) {
  Specification s;
  s.name = "W";
  s.vars = {var("w8", Type::u8()), var("w16", Type::u16()),
            var("w20", Type::of_width(20))};
  s.top = leaf("L", block(assign("w8", lit(1)), assign("w16", lit(2)),
                          assign("w20", lit(3))));
  Partition p(s, Allocation::proc_plus_asic());
  AddressMap m(p, ProtocolStyle::ByteSerial);
  EXPECT_EQ(m.beats_of("w8"), 1u);
  EXPECT_EQ(m.beats_of("w16"), 2u);
  EXPECT_EQ(m.beats_of("w20"), 3u);
  EXPECT_EQ(m.total_slots(), 6u);
  EXPECT_EQ(m.data_type(), Type::u8());
}

TEST(BusPlan, MaxBusFormulas) {
  EXPECT_EQ(BusPlan::max_buses(ImplModel::Model1, 2), 1u);
  EXPECT_EQ(BusPlan::max_buses(ImplModel::Model2, 2), 3u);
  EXPECT_EQ(BusPlan::max_buses(ImplModel::Model3, 2), 6u);
  EXPECT_EQ(BusPlan::max_buses(ImplModel::Model4, 2), 5u);
  EXPECT_EQ(BusPlan::max_buses(ImplModel::Model3, 4), 20u);
}

TEST(BusPlan, ModelStructures) {
  Specification s = testing::medical_like_spec();
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  // L0,L1 on PROC; L2..L5 on ASIC: e,f,g cross; a,b local PROC; c,d,h local
  // ASIC (after auto assignment).
  part.assign_behavior("L2", 1);
  part.assign_behavior("L3", 1);
  part.assign_behavior("L4", 1);
  part.assign_behavior("L5", 1);
  part.auto_assign_vars(g);

  auto count_role = [](const BusPlan& p, BusRole r) {
    size_t n = 0;
    for (const auto& b : p.buses()) {
      if (b.role == r) ++n;
    }
    return n;
  };

  BusPlan m1 = BusPlan::build(part, g, ImplModel::Model1);
  EXPECT_EQ(m1.buses().size(), 1u);
  EXPECT_EQ(m1.memories().size(), 2u);
  EXPECT_EQ(m1.route(0, "e"), std::vector<std::string>{"gbus"});
  EXPECT_EQ(m1.route(1, "a"), std::vector<std::string>{"gbus"});

  BusPlan m2 = BusPlan::build(part, g, ImplModel::Model2);
  EXPECT_LE(m2.buses().size(), BusPlan::max_buses(ImplModel::Model2, 2));
  EXPECT_EQ(count_role(m2, BusRole::SharedGlobal), 1u);
  EXPECT_EQ(count_role(m2, BusRole::Local), 2u);
  // Local var a routes to PROC's local bus; global e to the shared bus.
  EXPECT_EQ(m2.route(0, "a").front(), "lbus_PROC");
  EXPECT_EQ(m2.route(0, "e").front(), "gbus");
  EXPECT_EQ(m2.route(1, "e").front(), "gbus");

  BusPlan m3 = BusPlan::build(part, g, ImplModel::Model3);
  EXPECT_LE(m3.buses().size(), BusPlan::max_buses(ImplModel::Model3, 2));
  EXPECT_EQ(count_role(m3, BusRole::Local), 2u);
  EXPECT_GE(count_role(m3, BusRole::Dedicated), 2u);
  // Same global variable, different accessor -> different dedicated bus.
  EXPECT_NE(m3.route(0, "e").front(), m3.route(1, "e").front());

  BusPlan m4 = BusPlan::build(part, g, ImplModel::Model4);
  EXPECT_LE(m4.buses().size(), BusPlan::max_buses(ImplModel::Model4, 2));
  EXPECT_EQ(count_role(m4, BusRole::Inter), 1u);
  EXPECT_EQ(m4.memories().size(), 2u);  // one local memory per component
  // Remote access crosses three buses; local access stays on one.
  const size_t owner_e = part.component_of_var("e");
  const size_t other_e = 1 - owner_e;
  EXPECT_EQ(m4.route(other_e, "e").size(), 3u);
  EXPECT_EQ(m4.route(owner_e, "e").size(), 1u);
}

TEST(BusPlan, PaperMemoryModuleCounts) {
  // Section 5: "in Model1 and Model4, two memory modules are required...
  // in Model2 and Model3, four memory modules are required."
  Specification s = testing::medical_like_spec();
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("L2", 1);
  part.assign_behavior("L3", 1);
  part.assign_behavior("L4", 1);
  part.assign_behavior("L5", 1);
  // Split global-variable ownership across both components (the paper's
  // example owns globals on both sides).
  part.assign_var("e", 1);
  part.auto_assign_vars(g);
  EXPECT_EQ(BusPlan::build(part, g, ImplModel::Model1).memories().size(), 2u);
  EXPECT_EQ(BusPlan::build(part, g, ImplModel::Model2).memories().size(), 4u);
  EXPECT_EQ(BusPlan::build(part, g, ImplModel::Model3).memories().size(), 4u);
  EXPECT_EQ(BusPlan::build(part, g, ImplModel::Model4).memories().size(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end refinement
// ---------------------------------------------------------------------------

RefineConfig config_for(ImplModel m,
                        ProtocolStyle p = ProtocolStyle::FullHandshake,
                        LeafScheme l = LeafScheme::LoopLeaf) {
  RefineConfig cfg;
  cfg.model = m;
  cfg.protocol = p;
  cfg.leaf_scheme = l;
  return cfg;
}

RefineConfig config_proc_mode(ImplModel m) {
  RefineConfig cfg = config_for(m);
  cfg.inline_protocols = false;  // keep transfers as calls for inspection
  return cfg;
}

class RefineAllModels : public ::testing::TestWithParam<ImplModel> {};

TEST_P(RefineAllModels, AbcEquivalence) {
  for (uint64_t seed : {0u, 1u, 3u}) {
    AbcSetup s(seed);
    RefineResult r = refine(s.part, s.graph, config_for(GetParam()));
    EquivalenceReport rep = check_equivalence(s.spec, r.refined);
    EXPECT_TRUE(rep.equivalent)
        << to_string(GetParam()) << " seed " << seed << ": " << rep.summary();
  }
}

TEST_P(RefineAllModels, RefinedSpecIsValidAndLarger) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_for(GetParam()));
  DiagnosticSink diags;
  EXPECT_TRUE(validate(r.refined, diags)) << diags.str();
  EXPECT_GT(count_lines(print(r.refined)), count_lines(print(s.spec)));
}

TEST_P(RefineAllModels, BusCountWithinPaperBound) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_for(GetParam()));
  EXPECT_LE(r.stats.buses, BusPlan::max_buses(GetParam(), 2));
}

INSTANTIATE_TEST_SUITE_P(Models, RefineAllModels,
                         ::testing::Values(ImplModel::Model1, ImplModel::Model2,
                                           ImplModel::Model3,
                                           ImplModel::Model4),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ControlRefine, StubAndServerGenerated) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_for(ImplModel::Model1));
  // The PROC side gets B_CTRL in Main; the ASIC side hosts B_NEW.
  EXPECT_NE(r.refined.find_behavior("B_CTRL"), nullptr);
  EXPECT_NE(r.refined.find_behavior("B_NEW"), nullptr);
  EXPECT_NE(r.refined.find_signal("B_start"), nullptr);
  EXPECT_NE(r.refined.find_signal("B_done"), nullptr);
  // Transitions updated to reference the stub.
  const Behavior* main_b = r.refined.find_behavior("Main");
  ASSERT_NE(main_b, nullptr);
  bool stub_arc = false;
  for (const Transition& t : main_b->transitions) {
    if (t.to == "B_CTRL") stub_arc = true;
    EXPECT_NE(t.to, "B");
  }
  EXPECT_TRUE(stub_arc);
  EXPECT_EQ(r.stats.moved_behaviors, 1u);
  EXPECT_EQ(r.stats.control_signals, 2u);
}

TEST(ControlRefine, WrapperSchemeForLeaf) {
  AbcSetup s(3);
  RefineResult r = refine(
      s.part, s.graph,
      config_for(ImplModel::Model1, ProtocolStyle::FullHandshake,
                 LeafScheme::WrapperSeq));
  // Figure 4(c): B_NEW is a sequential composite with WAIT/SETDONE leaves
  // and the original B inside.
  const Behavior* b_new = r.refined.find_behavior("B_NEW");
  ASSERT_NE(b_new, nullptr);
  EXPECT_EQ(b_new->kind, BehaviorKind::Sequential);
  EXPECT_NE(r.refined.find_behavior("B_WAIT"), nullptr);
  EXPECT_NE(r.refined.find_behavior("B_SETDONE"), nullptr);
  EXPECT_NE(r.refined.find_behavior("B"), nullptr);
  EquivalenceReport rep = check_equivalence(s.spec, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(ControlRefine, NonLeafCutUsesWrapper) {
  // Move a composite subtree: always scheme 4(c).
  Specification s;
  s.name = "NL";
  s.vars = {var("x", Type::u16(), 0, true)};
  auto sub = seq("Sub", behaviors(leaf("S1", block(assign("x", lit(7)))),
                                  leaf("S2", block(assign("x", add(ref("x"),
                                                                   lit(1)))))));
  s.top = seq("Top", behaviors(leaf("Pre", block(assign("x", lit(1)))),
                               std::move(sub),
                               leaf("Post", block(assign("x",
                                                         mul(ref("x"),
                                                             lit(2)))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("Sub", 1);
  part.auto_assign_vars(g);
  RefineResult r = refine(part, g, config_for(ImplModel::Model1));
  const Behavior* sub_new = r.refined.find_behavior("Sub_NEW");
  ASSERT_NE(sub_new, nullptr);
  EXPECT_EQ(sub_new->kind, BehaviorKind::Sequential);
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
  EXPECT_EQ(rep.refined_result.final_vars.at("x"), 16u);
}

TEST(ControlRefine, CutBehaviorReinvokedInLoop) {
  // The 4-phase B_CTRL handshake must support repeated invocations: the cut
  // behavior sits inside a looping composite.
  Specification s;
  s.name = "Loop";
  s.vars = {var("n", Type::u8()), var("acc", Type::u16(), 0, true)};
  auto body = leaf("Work", block(assign("acc", add(ref("acc"), lit(5)))));
  auto step = leaf("Step", block(assign("n", add(ref("n"), lit(1)))));
  s.top = seq("Top", behaviors(std::move(body), std::move(step)),
              arcs(on("Step", lt(ref("n"), lit(4)), "Work"), done("Step")));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("Work", 1);
  part.auto_assign_vars(g);
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model4}) {
    RefineResult r = refine(part, g, config_for(m));
    EquivalenceReport rep = check_equivalence(s, r.refined);
    EXPECT_TRUE(rep.equivalent) << to_string(m) << ": " << rep.summary();
    EXPECT_EQ(rep.refined_result.final_vars.at("acc"), 20u);
  }
}

TEST(DataRefine, LeafAccessRewritten) {
  // Figure 5: x := x + 5 becomes receive/compute/send via tmp.
  Specification s;
  s.name = "D";
  s.vars = {var("x", Type::u16(), 1, true)};
  s.top = seq("Top", behaviors(leaf("A", block(assign("x", add(ref("x"),
                                                               lit(5))))),
                               leaf("B", block(assign("x", mul(ref("x"),
                                                               lit(3)))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  RefineResult r = refine(part, g, config_proc_mode(ImplModel::Model1));
  // A's body: no direct reference to x anymore.
  const Behavior* a = r.refined.find_behavior("A");
  ASSERT_NE(a, nullptr);
  const std::string body = print(*a);
  EXPECT_EQ(body.find("x := x"), std::string::npos);  // no direct access left
  EXPECT_NE(body.find("call MST_receive_"), std::string::npos);
  EXPECT_NE(body.find("call MST_send_"), std::string::npos);
  EXPECT_NE(body.find("A_t_x"), std::string::npos);
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
  EXPECT_EQ(rep.refined_result.final_vars.at("x"), 18u);
}

TEST(DataRefine, WhileConditionRefetches) {
  Specification s;
  s.name = "W";
  s.vars = {var("i", Type::u8()), var("acc", Type::u16(), 0, true)};
  s.top = seq("Top",
              behaviors(leaf("A", block(while_(lt(ref("i"), lit(4)),
                                               block(assign("acc",
                                                            add(ref("acc"),
                                                                ref("i"))),
                                                     assign("i",
                                                            add(ref("i"),
                                                                lit(1))))))),
                        leaf("B", block(assign("acc", add(ref("acc"),
                                                          ref("i")))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model2, ImplModel::Model3,
                      ImplModel::Model4}) {
    RefineResult r = refine(part, g, config_for(m));
    EquivalenceReport rep = check_equivalence(s, r.refined);
    EXPECT_TRUE(rep.equivalent) << to_string(m) << ": " << rep.summary();
    EXPECT_EQ(rep.refined_result.final_vars.at("acc"), 0u + 1 + 2 + 3 + 4);
  }
}

TEST(DataRefine, GuardFetchNodeInserted) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_for(ImplModel::Model1));
  // Figure 6: guards on arcs leaving A now read a composite tmp fetched by
  // an inserted A_fetch leaf.
  const Behavior* fetch = r.refined.find_behavior("A_fetch");
  ASSERT_NE(fetch, nullptr);
  EXPECT_TRUE(fetch->is_leaf());
  const Behavior* main_b = r.refined.find_behavior("Main");
  ASSERT_NE(main_b, nullptr);
  bool a_to_fetch = false;
  for (const Transition& t : main_b->transitions) {
    if (t.from == "A" && t.to == "A_fetch") a_to_fetch = true;
    if (t.guard) {
      std::vector<std::string> names;
      t.guard->collect_names(names);
      for (const auto& n : names) EXPECT_NE(n, "x");
    }
  }
  EXPECT_TRUE(a_to_fetch);
}

TEST(DataRefine, UserProcedureCallsRefined) {
  Specification s;
  s.name = "P";
  s.vars = {var("x", Type::u16(), 4, true), var("y", Type::u16(), 0, true)};
  Procedure p;
  p.name = "Twice";
  p.params.push_back(in_param("a", Type::u16()));
  p.params.push_back(out_param("r", Type::u16()));
  p.body = block(assign("r", mul(ref("a"), lit(2))));
  s.procedures.push_back(std::move(p));
  s.top = seq("Top",
              behaviors(leaf("A", block(call("Twice", args(ref("x"), ref("y"))))),
                        leaf("B", block(assign("x", add(ref("x"), ref("y")))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  RefineResult r = refine(part, g, config_for(ImplModel::Model2));
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
  EXPECT_EQ(rep.refined_result.final_vars.at("y"), 8u);
  EXPECT_EQ(rep.refined_result.final_vars.at("x"), 12u);
}

TEST(Refine, RejectsProcedureTouchingSpecVars) {
  Specification s;
  s.name = "Bad";
  s.vars = {var("x")};
  Procedure p;
  p.name = "Naughty";
  p.body = block(assign("x", lit(1)));
  s.procedures.push_back(std::move(p));
  s.top = seq("Top", behaviors(leaf("A", block(call("Naughty", args()))),
                               leaf("B", block(assign("x", lit(2))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  EXPECT_THROW(refine(part, g, config_for(ImplModel::Model1)), SpecError);
}

TEST(ArchRefine, ArbiterOnSharedBusOnly) {
  AbcSetup s(3);
  // Model1: PROC main thread and ASIC's B_NEW both master the single bus.
  RefineResult m1 = refine(s.part, s.graph, config_for(ImplModel::Model1));
  EXPECT_EQ(m1.stats.arbiters, 1u);
  EXPECT_NE(m1.refined.find_behavior("ARB_gbus"), nullptr);
  // Model3: every generated bus has a single master -> no arbiters.
  RefineResult m3 = refine(s.part, s.graph, config_for(ImplModel::Model3));
  EXPECT_EQ(m3.stats.arbiters, 0u);
}

TEST(ArchRefine, Model4InterfacesGenerated) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_for(ImplModel::Model4));
  EXPECT_GE(r.stats.interfaces, 2u);
  bool has_out = false, has_in = false;
  for (const Behavior* b : r.refined.all_behaviors()) {
    if (b->name.find("_OUT") != std::string::npos) has_out = true;
    if (b->name.find("_IN") != std::string::npos) has_in = true;
  }
  EXPECT_TRUE(has_out);
  EXPECT_TRUE(has_in);
}

TEST(ArchRefine, MultiPortMemoryInModel3) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_for(ImplModel::Model3));
  bool multiport = false;
  for (const MemoryModule& m : r.plan.memories()) {
    if (m.port_buses.size() > 1) multiport = true;
  }
  EXPECT_TRUE(multiport);
  // The generated multi-port memory is a concurrent composite.
  bool conc_mem = false;
  for (const Behavior* b : r.refined.all_behaviors()) {
    if (b->name.rfind("GMEM_", 0) == 0 &&
        b->kind == BehaviorKind::Concurrent) {
      conc_mem = true;
    }
  }
  EXPECT_TRUE(conc_mem);
}

TEST(ArchRefine, Model3PortCapSharesBuses) {
  // Section 3: "designers can select the number of memory ports". With a
  // 3-component allocation, an uncapped Model3 global memory serving all
  // three components has 3 ports; capping at 1 collapses them onto one
  // arbitrated bus.
  Specification s;
  s.name = "Ports";
  s.vars = {var("g", Type::u16(), 0, true)};
  std::vector<BehaviorPtr> kids;
  for (int i = 0; i < 3; ++i) {
    kids.push_back(leaf("L" + std::to_string(i),
                        block(assign("g", add(ref("g"), lit(1))))));
  }
  s.top = seq("Top", std::move(kids));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::asics(3));
  part.assign_behavior("L1", 1);
  part.assign_behavior("L2", 2);
  part.auto_assign_vars(g);

  RefineConfig uncapped = config_for(ImplModel::Model3);
  RefineResult r_full = refine(part, g, uncapped);
  ASSERT_EQ(r_full.plan.memories().size(), 1u);
  EXPECT_EQ(r_full.plan.memories()[0].port_buses.size(), 3u);
  EXPECT_EQ(r_full.stats.arbiters, 0u);  // dedicated buses, one master each

  RefineConfig capped = config_for(ImplModel::Model3);
  capped.max_memory_ports = 1;
  RefineResult r_one = refine(part, g, capped);
  EXPECT_EQ(r_one.plan.memories()[0].port_buses.size(), 1u);
  EXPECT_EQ(r_one.stats.arbiters, 1u);  // shared port bus needs arbitration
  EXPECT_LT(r_one.stats.buses, r_full.stats.buses);

  // Both remain functionally equivalent.
  for (const RefineResult* r : {&r_full, &r_one}) {
    EquivalenceReport rep = check_equivalence(s, r->refined);
    EXPECT_TRUE(rep.equivalent) << rep.summary();
  }

  // Intermediate cap: 2 ports for 3 accessors.
  RefineConfig two = config_for(ImplModel::Model3);
  two.max_memory_ports = 2;
  RefineResult r_two = refine(part, g, two);
  EXPECT_EQ(r_two.plan.memories()[0].port_buses.size(), 2u);
  EquivalenceReport rep2 = check_equivalence(s, r_two.refined);
  EXPECT_TRUE(rep2.equivalent) << rep2.summary();
}

TEST(ArchRefine, Model3PortCapOnMedical) {
  Specification spec = testing::medical_like_spec();
  AccessGraph g = build_access_graph(spec);
  Partition part(spec, Allocation::proc_plus_asic());
  part.assign_behavior("L2", 1);
  part.assign_behavior("L3", 1);
  part.auto_assign_vars(g);
  RefineConfig cfg = config_for(ImplModel::Model3);
  cfg.max_memory_ports = 1;
  RefineResult r = refine(part, g, cfg);
  for (const MemoryModule& m : r.plan.memories()) {
    EXPECT_LE(m.port_buses.size(), 1u);
  }
  EquivalenceReport rep = check_equivalence(spec, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(Protocol, ByteSerialEquivalentOnFinalValues) {
  AbcSetup s(3);
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model4}) {
    RefineResult r = refine(
        s.part, s.graph, config_for(m, ProtocolStyle::ByteSerial));
    EquivalenceOptions opts;
    // Byte-serial writes commit per beat; intermediate partial values make
    // write *traces* incomparable, final values must still match.
    opts.compare_write_traces = false;
    EquivalenceReport rep = check_equivalence(s.spec, r.refined, opts);
    EXPECT_TRUE(rep.equivalent) << to_string(m) << ": " << rep.summary();
  }
}

TEST(Refine, StatsAndMastersReported) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_proc_mode(ImplModel::Model1));
  EXPECT_EQ(r.stats.buses, 1u);
  EXPECT_EQ(r.stats.memories, 2u);
  EXPECT_GE(r.stats.generated_procs, 4u);
  EXPECT_EQ(r.stats.inlined_sites, 0u);
  ASSERT_EQ(r.bus_masters.count("gbus"), 1u);
  EXPECT_GE(r.bus_masters.at("gbus").size(), 2u);
  EXPECT_GT(r.stats.behaviors, s.spec.all_behaviors().size());
}

TEST(Inline, ProtocolsExpandedAtEverySite) {
  AbcSetup s(3);
  RefineResult r = refine(s.part, s.graph, config_for(ImplModel::Model1));
  // Default config inlines: no MST procedures remain, no protocol calls.
  EXPECT_EQ(r.stats.generated_procs, 0u);
  EXPECT_GT(r.stats.inlined_sites, 0u);
  for (const Procedure& p : r.refined.procedures) {
    EXPECT_EQ(p.name.rfind("MST_", 0), std::string::npos) << p.name;
  }
  const std::string text = print(r.refined);
  EXPECT_EQ(text.find("call MST_"), std::string::npos);
  // The handshake appears inline in the rewritten leaf bodies.
  const Behavior* a = r.refined.find_behavior("A");
  ASSERT_NE(a, nullptr);
  const std::string body = print(*a);
  EXPECT_NE(body.find("gbus_start <= 1"), std::string::npos);
  EXPECT_NE(body.find("wait gbus_done == 1"), std::string::npos);
  EquivalenceReport rep = check_equivalence(s.spec, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(Inline, MuchLargerThanProcedureMode) {
  AbcSetup s(3);
  RefineResult inl = refine(s.part, s.graph, config_for(ImplModel::Model1));
  RefineResult prc =
      refine(s.part, s.graph, config_proc_mode(ImplModel::Model1));
  EXPECT_GT(count_lines(print(inl.refined)), count_lines(print(prc.refined)));
}

TEST(Inline, ByteSerialLoopLocalsHoistedAndReset) {
  // Byte-serial protocol procedures carry locals (k, acc, byte_v); inlining
  // hoists them onto the behavior and re-initializes per site.
  AbcSetup s(3);
  RefineResult r =
      refine(s.part, s.graph,
             config_for(ImplModel::Model1, ProtocolStyle::ByteSerial));
  EXPECT_GT(r.stats.inlined_sites, 0u);
  DiagnosticSink diags;
  EXPECT_TRUE(validate(r.refined, diags)) << diags.str();
  EquivalenceOptions opts;
  opts.compare_write_traces = false;
  EquivalenceReport rep = check_equivalence(s.spec, r.refined, opts);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

}  // namespace
}  // namespace specsyn
