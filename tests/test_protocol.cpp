// Unit tests for the protocol/arbiter/memory generators, exercised both
// structurally and by simulating the generated artifacts in isolation.
#include <gtest/gtest.h>

#include "refine/arbiter_gen.h"
#include "refine/memory_gen.h"
#include "refine/protocol.h"
#include "printer/printer.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

TEST(BusSignalsNames, Bundle) {
  BusSignals s = BusSignals::of("b1");
  EXPECT_EQ(s.start, "b1_start");
  EXPECT_EQ(s.done, "b1_done");
  EXPECT_EQ(s.rd, "b1_rd");
  EXPECT_EQ(s.wr, "b1_wr");
  EXPECT_EQ(s.addr, "b1_addr");
  EXPECT_EQ(s.data, "b1_data");
  EXPECT_EQ(req_signal("b1", "M"), "b1_req_M");
  EXPECT_EQ(ack_signal("b1", "M"), "b1_ack_M");
}

TEST(ProtocolGen, SignalDeclarationWidths) {
  ProtocolGen proto(ProtocolStyle::FullHandshake, Type::of_width(5),
                    Type::of_width(24), Type::of_width(24));
  std::vector<SignalDecl> sigs;
  proto.declare_bus_signals("b", sigs);
  ASSERT_EQ(sigs.size(), 6u);
  EXPECT_EQ(sigs[0].type, Type::bit());   // start
  EXPECT_EQ(sigs[4].type.width, 5u);      // addr
  EXPECT_EQ(sigs[5].type.width, 24u);     // data
}

TEST(ProtocolGen, ProcNames) {
  EXPECT_EQ(ProtocolGen::read_proc_name("b1", "M"), "MST_receive_b1_M");
  EXPECT_EQ(ProtocolGen::write_proc_name("b1", ""), "MST_send_b1");
}

TEST(ProtocolGen, HandshakeProcStructure) {
  ProtocolGen proto(ProtocolStyle::FullHandshake, Type::u8(), Type::u16(),
                    Type::u16());
  Procedure rd = proto.master_read_proc("R", "b", "", "");
  ASSERT_EQ(rd.params.size(), 3u);
  EXPECT_EQ(rd.params[0].name, "a");
  EXPECT_FALSE(rd.params[0].is_out);
  EXPECT_TRUE(rd.params[2].is_out);
  EXPECT_TRUE(rd.locals.empty());
  // Unarbitrated: 8 statements (Fig 5d), first raises rd.
  ASSERT_EQ(rd.body.size(), 8u);
  EXPECT_EQ(rd.body[0]->kind, Stmt::Kind::SignalAssign);
  EXPECT_EQ(rd.body[0]->target, "b_rd");

  Procedure rd_arb = proto.master_read_proc("R2", "b", "b_req_M", "b_ack_M");
  EXPECT_EQ(rd_arb.body.size(), 12u);  // + acquire (2) + release (2)
  EXPECT_EQ(rd_arb.body[0]->target, "b_req_M");
  EXPECT_EQ(rd_arb.body.back()->kind, Stmt::Kind::Wait);
}

TEST(ProtocolGen, ByteSerialProcHasBeatLoop) {
  ProtocolGen proto(ProtocolStyle::ByteSerial, Type::u8(), Type::u8(),
                    Type::u32());
  Procedure wr = proto.master_write_proc("W", "b", "", "");
  ASSERT_EQ(wr.locals.size(), 1u);  // k
  const std::string text = print(wr);
  EXPECT_NE(text.find("while k < beats"), std::string::npos);
  Procedure rd = proto.master_read_proc("R", "b", "", "");
  EXPECT_EQ(rd.locals.size(), 3u);  // k, acc, byte_v
}

TEST(ProtocolGen, SlaveLoopGatesOnOwnAddresses) {
  ProtocolGen proto(ProtocolStyle::FullHandshake, Type::u8(), Type::u16(),
                    Type::u16());
  StmtList body = proto.slave_server_loop("b", {{"x", 3, Type::u16()},
                                                {"y", 7, Type::u16()}});
  ASSERT_EQ(body.size(), 1u);
  ASSERT_EQ(body[0]->kind, Stmt::Kind::Loop);
  const Stmt& w = *body[0]->then_block[0];
  ASSERT_EQ(w.kind, Stmt::Kind::Wait);
  const std::string cond = print(*w.expr);
  // Responds only to its own addresses — crucial on shared buses.
  EXPECT_NE(cond.find("b_addr == 3"), std::string::npos);
  EXPECT_NE(cond.find("b_addr == 7"), std::string::npos);
  EXPECT_NE(cond.find("b_start == 1"), std::string::npos);
}

TEST(ProtocolGen, ByteSerialSlaveUsesRanges) {
  ProtocolGen proto(ProtocolStyle::ByteSerial, Type::u8(), Type::u8(),
                    Type::u32());
  StmtList body = proto.slave_server_loop("b", {{"w", 4, Type::u32()}});
  const std::string text = print(*body[0]);
  // 4 beats: addresses 4..7.
  EXPECT_NE(text.find("b_addr >= 4"), std::string::npos);
  EXPECT_NE(text.find("b_addr <= 7"), std::string::npos);
}

// --- end-to-end micro-simulations -----------------------------------------

/// Builds a two-process spec: a master leaf executing `master_body` and a
/// memory slave holding `vars`, connected by bus "b".
Specification transfer_rig(ProtocolStyle style, Type data_t, Type word_t,
                           std::vector<SlaveVar> vars, StmtList master_body,
                           std::vector<Procedure> procs) {
  Specification s;
  s.name = "Rig";
  ProtocolGen proto(style, Type::u8(), data_t, word_t);
  proto.declare_bus_signals("b", s.signals);
  for (auto& p : procs) s.procedures.push_back(std::move(p));

  auto master = leaf("Master", std::move(master_body));
  master->vars.push_back(var("got", word_t, 0, true));

  MemoryModule mod;
  mod.name = "Mem";
  mod.port_buses = {{"b", 0}};
  Specification holder;  // provides the stored variables' declarations
  holder.name = "H";
  for (const SlaveVar& v : vars) {
    mod.vars.push_back(v.name);
    holder.vars.push_back(build::var(v.name, v.type, 0, true));
  }
  AddressMap dummy_map = [&] {
    Partition p(holder, Allocation::asics(1));
    return AddressMap(p, style);
  }();
  (void)dummy_map;
  // Build the memory behavior directly from the slave loop (the address
  // values come from `vars`).
  auto mem = Behavior::make_leaf("Mem", proto.slave_server_loop("b", vars));
  for (const SlaveVar& v : vars) {
    mem->vars.push_back(build::var(v.name, v.type, 0, true));
  }
  s.top = conc("Top", behaviors(std::move(master), std::move(mem)));
  return s;
}

TEST(ProtocolSim, HandshakeWriteThenRead) {
  ProtocolGen proto(ProtocolStyle::FullHandshake, Type::u8(), Type::u16(),
                    Type::u16());
  std::vector<Procedure> procs;
  procs.push_back(proto.master_read_proc("R", "b", "", ""));
  procs.push_back(proto.master_write_proc("W", "b", "", ""));
  StmtList body = block(
      call("W", args(lit(3), lit(1), lit(0xBEEF))),
      call("R", args(lit(3), lit(1), ref("got"))));
  Specification s = transfer_rig(ProtocolStyle::FullHandshake, Type::u16(),
                                 Type::u16(), {{"x", 3, Type::u16()}},
                                 std::move(body), std::move(procs));
  testing::expect_valid(s);
  SimResult r = testing::run(s);
  EXPECT_EQ(r.status, SimResult::Status::Quiescent);
  EXPECT_EQ(r.final_vars.at("x"), 0xBEEFu);
  EXPECT_EQ(r.final_vars.at("got"), 0xBEEFu);
}

TEST(ProtocolSim, ByteSerialRoundTripsWideValues) {
  ProtocolGen proto(ProtocolStyle::ByteSerial, Type::u8(), Type::u8(),
                    Type::of_width(24));
  std::vector<Procedure> procs;
  procs.push_back(proto.master_read_proc("R", "b", "", ""));
  procs.push_back(proto.master_write_proc("W", "b", "", ""));
  // 24-bit variable at base addr 4: 3 beats.
  StmtList body = block(
      call("W", args(lit(4), lit(3), lit(0xABCDEF))),
      call("R", args(lit(4), lit(3), ref("got"))));
  Specification s = transfer_rig(ProtocolStyle::ByteSerial, Type::u8(),
                                 Type::of_width(24),
                                 {{"w", 4, Type::of_width(24)}},
                                 std::move(body), std::move(procs));
  testing::expect_valid(s);
  SimResult r = testing::run(s);
  EXPECT_EQ(r.final_vars.at("w"), 0xABCDEFu);
  EXPECT_EQ(r.final_vars.at("got"), 0xABCDEFu);
}

TEST(ProtocolSim, TwoSlavesOneBusNoCrosstalk) {
  // The regression the property sweep found: two memories share a bus; each
  // must ignore the other's transactions.
  ProtocolGen proto(ProtocolStyle::FullHandshake, Type::u8(), Type::u16(),
                    Type::u16());
  Specification s;
  s.name = "TwoSlaves";
  proto.declare_bus_signals("b", s.signals);
  s.procedures.push_back(proto.master_read_proc("R", "b", "", ""));
  s.procedures.push_back(proto.master_write_proc("W", "b", "", ""));

  auto mem1 = Behavior::make_leaf(
      "Mem1", proto.slave_server_loop("b", {{"x", 0, Type::u16()}}));
  mem1->vars.push_back(var("x", Type::u16(), 0, true));
  auto mem2 = Behavior::make_leaf(
      "Mem2", proto.slave_server_loop("b", {{"y", 1, Type::u16()}}));
  mem2->vars.push_back(var("y", Type::u16(), 0, true));

  auto master = leaf("Master", block(call("W", args(lit(0), lit(1), lit(111))),
                                     call("W", args(lit(1), lit(1), lit(222))),
                                     call("R", args(lit(0), lit(1), ref("g1"))),
                                     call("R", args(lit(1), lit(1), ref("g2")))));
  master->vars.push_back(var("g1", Type::u16(), 0, true));
  master->vars.push_back(var("g2", Type::u16(), 0, true));
  s.top = conc("Top", behaviors(std::move(master), std::move(mem1),
                                std::move(mem2)));
  testing::expect_valid(s);
  SimResult r = testing::run(s);
  EXPECT_EQ(r.status, SimResult::Status::Quiescent);
  EXPECT_EQ(r.final_vars.at("x"), 111u);
  EXPECT_EQ(r.final_vars.at("y"), 222u);
  EXPECT_EQ(r.final_vars.at("g1"), 111u);
  EXPECT_EQ(r.final_vars.at("g2"), 222u);
}

// --- arbiter ----------------------------------------------------------------

TEST(Arbiter, RequiresTwoMasters) {
  EXPECT_THROW(generate_arbiter("b", {"only"}), SpecError);
}

TEST(Arbiter, SignalDeclarations) {
  std::vector<SignalDecl> sigs;
  declare_arbitration_signals("b", {"M1", "M2"}, sigs);
  ASSERT_EQ(sigs.size(), 4u);
  EXPECT_EQ(sigs[0].name, "b_req_M1");
  EXPECT_EQ(sigs[1].name, "b_ack_M1");
}

TEST(Arbiter, MutualExclusionAndPriority) {
  // Two masters request simultaneously and repeatedly; the arbiter must
  // never grant both, and must grant M1 (higher priority) first.
  Specification s;
  s.name = "Arb";
  declare_arbitration_signals("b", {"M1", "M2"}, s.signals);
  s.vars.push_back(var("overlap", Type::u8(), 0, true));
  s.vars.push_back(var("first", Type::u8(), 0, true));
  s.vars.push_back(var("m1_cnt", Type::u8()));
  s.vars.push_back(var("m2_cnt", Type::u8()));

  auto master = [&](const char* name, const char* req, const char* ack,
                    const char* cnt, uint64_t id) {
    // Request; once granted, check the other ack is low; record grant order.
    const std::string other_ack =
        id == 1 ? "b_ack_M2" : "b_ack_M1";
    return leaf(name,
                block(while_(lt(ref(cnt), lit(3)),
                             block(set(req, 1), wait_eq(ack, 1),
                                   if_(eq(ref(other_ack), lit(1, Type::bit())),
                                       block(assign("overlap", lit(1)))),
                                   if_(eq(ref("first"), lit(0)),
                                       block(assign("first", lit(id)))),
                                   delay(3), set(req, 0), wait_eq(ack, 0),
                                   assign(cnt, add(ref(cnt), lit(1)))))));
  };
  auto arb = generate_arbiter("b", {"M1", "M2"});
  s.top = conc("Top", behaviors(master("MA", "b_req_M1", "b_ack_M1",
                                       "m1_cnt", 1),
                                master("MB", "b_req_M2", "b_ack_M2",
                                       "m2_cnt", 2),
                                std::move(arb)));
  testing::expect_valid(s);
  SimResult r = testing::run(s);
  EXPECT_EQ(r.status, SimResult::Status::Quiescent);
  EXPECT_EQ(r.final_vars.at("m1_cnt"), 3u);  // both masters served
  EXPECT_EQ(r.final_vars.at("m2_cnt"), 3u);
  EXPECT_EQ(r.final_vars.at("overlap"), 0u);  // never both granted
  EXPECT_EQ(r.final_vars.at("first"), 1u);    // M1 has priority
}

TEST(Arbiter, ThreeMastersAllServed) {
  Specification s;
  s.name = "Arb3";
  std::vector<std::string> masters = {"A", "B", "C"};
  declare_arbitration_signals("b", masters, s.signals);
  std::vector<BehaviorPtr> procs_b;
  for (const auto& m : masters) {
    s.vars.push_back(var("done_" + m, Type::u8(), 0, true));
    procs_b.push_back(leaf("M" + m,
                           block(set(req_signal("b", m), 1),
                                 wait_eq(ack_signal("b", m), 1), delay(2),
                                 set(req_signal("b", m), 0),
                                 wait_eq(ack_signal("b", m), 0),
                                 assign("done_" + m, lit(1)))));
  }
  procs_b.push_back(generate_arbiter("b", masters));
  s.top = conc("Top", std::move(procs_b));
  testing::expect_valid(s);
  SimResult r = testing::run(s);
  EXPECT_EQ(r.final_vars.at("done_A"), 1u);
  EXPECT_EQ(r.final_vars.at("done_B"), 1u);
  EXPECT_EQ(r.final_vars.at("done_C"), 1u);
}

// --- memory generation --------------------------------------------------------

TEST(MemoryGen, SinglePortShape) {
  Specification orig;
  orig.name = "O";
  orig.vars = {var("x", Type::u16(), 5, true), var("y", Type::u8(), 2)};
  orig.top = leaf("T", block(assign("x", ref("y"))));
  Partition part(orig, Allocation::asics(1));
  AddressMap amap(part, ProtocolStyle::FullHandshake);
  ProtocolGen proto(ProtocolStyle::FullHandshake, amap.addr_type(),
                    amap.data_type(), Type::u16());
  MemoryModule m;
  m.name = "MEM";
  m.vars = {"x", "y"};
  m.port_buses = {{"b", 0}};
  BehaviorPtr b = generate_memory(m, proto, amap, orig);
  EXPECT_TRUE(b->is_leaf());
  ASSERT_EQ(b->vars.size(), 2u);
  EXPECT_EQ(b->vars[0].init, 5u);               // init preserved
  EXPECT_TRUE(b->vars[0].is_observable);        // observability preserved
}

TEST(MemoryGen, MultiPortIsConcurrentComposite) {
  Specification orig;
  orig.name = "O";
  orig.vars = {var("x", Type::u16())};
  orig.top = leaf("T", block(assign("x", lit(1))));
  Partition part(orig, Allocation::asics(1));
  AddressMap amap(part, ProtocolStyle::FullHandshake);
  ProtocolGen proto(ProtocolStyle::FullHandshake, amap.addr_type(),
                    amap.data_type(), Type::u16());
  MemoryModule m;
  m.name = "GMEM";
  m.vars = {"x"};
  m.port_buses = {{"b1", 0}, {"b2", 1}};
  BehaviorPtr b = generate_memory(m, proto, amap, orig);
  EXPECT_EQ(b->kind, BehaviorKind::Concurrent);
  EXPECT_EQ(b->children.size(), 2u);
  EXPECT_EQ(b->vars.size(), 1u);  // variables shared at the composite
}

TEST(MemoryGen, Errors) {
  Specification orig;
  orig.name = "O";
  orig.vars = {var("x")};
  orig.top = leaf("T", block(assign("x", lit(1))));
  Partition part(orig, Allocation::asics(1));
  AddressMap amap(part, ProtocolStyle::FullHandshake);
  ProtocolGen proto(ProtocolStyle::FullHandshake, amap.addr_type(),
                    amap.data_type(), Type::u32());
  MemoryModule no_ports;
  no_ports.name = "M";
  no_ports.vars = {"x"};
  EXPECT_THROW(generate_memory(no_ports, proto, amap, orig), SpecError);
  MemoryModule ghost;
  ghost.name = "M";
  ghost.vars = {"ghost"};
  ghost.port_buses = {{"b", 0}};
  EXPECT_THROW(generate_memory(ghost, proto, amap, orig), SpecError);
}

}  // namespace
}  // namespace specsyn
