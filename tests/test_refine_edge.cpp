// Refinement edge cases: degenerate partitions, extreme variable
// classifications, wide variables under byte-serial, determinism, and the
// master-granularity guard rails.
#include <gtest/gtest.h>

#include "printer/printer.h"
#include "refine/refiner.h"
#include "sim/equivalence.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

RefineConfig model(ImplModel m) {
  RefineConfig cfg;
  cfg.model = m;
  return cfg;
}

TEST(RefineEdge, NothingCutStillRefinesDataAccesses) {
  // All behaviors stay on component 0: no control refinement, but every
  // variable still moves into a memory and accesses become protocol
  // transfers (the paper's Model1 maps *all* variables to global memory).
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.auto_assign_vars(g);
  RefineResult r = refine(part, g, model(ImplModel::Model1));
  EXPECT_EQ(r.stats.moved_behaviors, 0u);
  EXPECT_EQ(r.stats.control_signals, 0u);
  EXPECT_GT(r.stats.inlined_sites, 0u);
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(RefineEdge, EverythingMovedToAsic) {
  // The whole top behavior pinned to component 1: the main flow lives on
  // the ASIC, the PROC hosts nothing.
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("Main", 1);
  part.auto_assign_vars(g);
  RefineResult r = refine(part, g, model(ImplModel::Model2));
  const Behavior* asic_top = r.refined.find_behavior("ASIC_top");
  ASSERT_NE(asic_top, nullptr);
  EXPECT_EQ(r.refined.find_behavior("PROC_top"), nullptr);
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(RefineEdge, UnaccessedVariableStillGetsAMemoryHome) {
  Specification s;
  s.name = "U";
  s.vars = {var("used", Type::u8(), 0, true), var("dead", Type::u8(), 42)};
  s.top = seq("Top", behaviors(leaf("A", block(assign("used", lit(1)))),
                               leaf("B", block(nop()))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model2,
                      ImplModel::Model4}) {
    RefineResult r = refine(part, g, model(m));
    ASSERT_NE(r.plan.module_of("dead"), nullptr) << to_string(m);
    EquivalenceReport rep = check_equivalence(s, r.refined);
    EXPECT_TRUE(rep.equivalent) << to_string(m) << ": " << rep.summary();
    // The unaccessed variable keeps its initial value in the memory.
    EXPECT_EQ(rep.refined_result.final_vars.at("dead"), 42u);
  }
}

TEST(RefineEdge, AllVariablesGlobal) {
  // Every variable accessed from both sides: Models 2/3 generate no local
  // memories at all.
  Specification s;
  s.name = "AG";
  s.vars = {var("p", Type::u16(), 0, true), var("q", Type::u16(), 0, true)};
  s.top = seq("Top",
              behaviors(leaf("A", block(assign("p", lit(1)),
                                        assign("q", lit(2)))),
                        leaf("B", block(assign("p", add(ref("p"), ref("q"))),
                                        assign("q", add(ref("q"), lit(1)))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  RefineResult r2 = refine(part, g, model(ImplModel::Model2));
  for (const MemoryModule& m : r2.plan.memories()) EXPECT_TRUE(m.global);
  for (const BusDecl& b : r2.plan.buses()) {
    EXPECT_NE(b.role, BusRole::Local);
  }
  EquivalenceReport rep = check_equivalence(s, r2.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(RefineEdge, SixtyFourBitByteSerial) {
  // 64-bit variable: 8 beats per access, address space strides by 8.
  Specification s;
  s.name = "Wide";
  s.vars = {var("w", Type::u64(), 0, true), var("n", Type::u8(), 0, true)};
  s.top = seq(
      "Top",
      behaviors(leaf("A", block(assign("w", lit(0x1122334455667788ULL,
                                                Type::u64())))),
                leaf("B", block(assign("w", add(ref("w"), lit(1))),
                                assign("n", band(ref("w"), lit(0xFF)))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  RefineConfig cfg = model(ImplModel::Model1);
  cfg.protocol = ProtocolStyle::ByteSerial;
  RefineResult r = refine(part, g, cfg);
  EXPECT_EQ(r.addresses.beats_of("w"), 8u);
  EquivalenceOptions eo;
  eo.compare_write_traces = false;
  EquivalenceReport rep = check_equivalence(s, r.refined, eo);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
  EXPECT_EQ(rep.refined_result.final_vars.at("w"), 0x1122334455667789ULL);
  EXPECT_EQ(rep.refined_result.final_vars.at("n"), 0x89u);
}

TEST(RefineEdge, DeterministicOutput) {
  Specification s = testing::medical_like_spec();
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("L3", 1);
  part.assign_behavior("L4", 1);
  part.auto_assign_vars(g);
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model2, ImplModel::Model3,
                      ImplModel::Model4}) {
    RefineResult a = refine(part, g, model(m));
    RefineResult b = refine(part, g, model(m));
    EXPECT_EQ(print(a.refined), print(b.refined)) << to_string(m);
  }
}

TEST(RefineEdge, ComponentGranularityRejectedUnderConcurrency) {
  Specification s;
  s.name = "C";
  s.vars = {var("a"), var("b")};
  s.top = conc("Top", behaviors(leaf("A", block(assign("a", lit(1)))),
                                leaf("B", block(assign("b", lit(2))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  RefineConfig cfg = model(ImplModel::Model1);
  cfg.master_granularity = MasterGranularity::Component;
  EXPECT_THROW(refine(part, g, cfg), SpecError);
  cfg.master_granularity = MasterGranularity::Auto;  // resolves to Thread
  RefineResult r = refine(part, g, cfg);
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(RefineEdge, ConcurrentBranchesContendOnSharedBus) {
  // Two truly concurrent branches on the same component, both hammering
  // variables mapped to the single Model1 bus: thread-granular arbitration
  // must serialize them without losing updates (disjoint variables, so the
  // final state is schedule-independent).
  Specification s;
  s.name = "Contend";
  s.vars = {var("x", Type::u16(), 0, true), var("y", Type::u16(), 0, true)};
  auto w1 = leaf("W1", block(while_(lt(ref("x"), lit(5)),
                                    block(assign("x", add(ref("x"),
                                                          lit(1)))))));
  auto w2 = leaf("W2", block(while_(lt(ref("y"), lit(7)),
                                    block(assign("y", add(ref("y"),
                                                          lit(1)))))));
  s.top = conc("Top", behaviors(std::move(w1), std::move(w2)));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("W2", 1);
  part.assign_var("x", 0);
  part.assign_var("y", 0);
  RefineResult r = refine(part, g, model(ImplModel::Model1));
  EXPECT_GE(r.bus_masters.at("gbus").size(), 2u);
  EXPECT_EQ(r.stats.arbiters, 1u);
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(RefineEdge, DelayAndSignalsInsideMovedBehavior) {
  // A cut behavior containing delays and signal handshakes of its own.
  Specification s;
  s.name = "DS";
  s.vars = {var("x", Type::u16(), 0, true)};
  auto worker = leaf("Worker", block(delay(5), assign("x", add(ref("x"),
                                                               lit(3))),
                                     delay(2)));
  s.top = seq("Top", behaviors(leaf("Pre", block(assign("x", lit(1)))),
                               std::move(worker),
                               leaf("Post", block(assign("x",
                                                         mul(ref("x"),
                                                             lit(2)))))));
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("Worker", 1);
  part.auto_assign_vars(g);
  for (ImplModel m : {ImplModel::Model2, ImplModel::Model4}) {
    RefineResult r = refine(part, g, model(m));
    EquivalenceReport rep = check_equivalence(s, r.refined);
    EXPECT_TRUE(rep.equivalent) << to_string(m) << ": " << rep.summary();
    EXPECT_EQ(rep.refined_result.final_vars.at("x"), 8u);
  }
}

TEST(RefineEdge, SingleComponentAllocationModel1) {
  // Degenerate single-chip allocation: still legal — all variables to one
  // global memory behind one bus, no control refinement possible.
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::asics(1));
  part.auto_assign_vars(g);
  RefineResult r = refine(part, g, model(ImplModel::Model1));
  EXPECT_EQ(r.stats.buses, 1u);
  EXPECT_EQ(r.stats.memories, 1u);
  EquivalenceReport rep = check_equivalence(s, r.refined);
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

}  // namespace
}  // namespace specsyn
