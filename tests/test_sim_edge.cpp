// Simulator edge cases beyond test_sim.cpp: nested concurrency, signal
// width wrapping, wait semantics under multiple waiters, transition corner
// cases, and scheduling determinism details.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;
using testing::run;

TEST(SimEdge, ConcInsideSeqInsideConc) {
  // Top conc { branch1: seq [A, par{B,C}, D], branch2: E }
  Specification s;
  s.name = "N";
  s.vars = {var("a"), var("b"), var("c"), var("d"), var("e")};
  auto inner_par = conc("Par", behaviors(leaf("B", block(assign("b", lit(1)))),
                                         leaf("C", block(assign("c", lit(1))))));
  auto branch1 = seq("Branch1",
                     behaviors(leaf("A", block(assign("a", lit(1)))),
                               std::move(inner_par),
                               leaf("D", block(assign("d",
                                                      add(ref("b"),
                                                          ref("c")))))));
  auto branch2 = leaf("E", block(delay(30), assign("e", lit(1))));
  s.top = conc("Top", behaviors(std::move(branch1), std::move(branch2)));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("d"), 2u);  // join before D
  EXPECT_EQ(r.final_vars.at("e"), 1u);
}

TEST(SimEdge, ConcJoinReenteredInLoop) {
  // A concurrent composite re-forked on every iteration of its sequential
  // parent: fork/join bookkeeping must reset.
  Specification s;
  s.name = "RJ";
  s.vars = {var("n"), var("hits")};
  auto par = conc("Par",
                  behaviors(leaf("W1", block(assign("hits", add(ref("hits"),
                                                                lit(1))))),
                            leaf("W2", block(delay(3)))));
  auto step = leaf("Step", block(assign("n", add(ref("n"), lit(1)))));
  s.top = seq("Top", behaviors(std::move(par), std::move(step)),
              arcs(on("Step", lt(ref("n"), lit(3)), "Par"), done("Step")));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("n"), 3u);
  EXPECT_EQ(r.final_vars.at("hits"), 3u);
  EXPECT_EQ(r.behavior_completions.at("Par"), 3u);
  EXPECT_EQ(r.behavior_completions.at("W2"), 3u);
}

TEST(SimEdge, SignalCommitWrapsToWidth) {
  auto body = block(sassign("s4", lit(0x1F)), delay(2),
                    assign("seen", ref("s4")));
  Specification s;
  s.name = "W";
  s.vars = {var("seen")};
  s.signals = {signal("s4", Type::of_width(4))};
  s.top = leaf("T", std::move(body));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("seen"), 0xFu);
}

TEST(SimEdge, RedundantSignalCommitDoesNotWake) {
  // Writing the same value is not an event: a waiter on change-to-1 that
  // already missed it stays blocked when 1 is re-committed... but here we
  // verify the subtler contract: committing an unchanged value produces no
  // signal-change notification.
  struct Counter : SimObserver {
    int changes = 0;
    void on_signal_change(const std::string&, uint64_t, uint64_t) override {
      ++changes;
    }
  };
  Specification s;
  s.name = "R";
  s.signals = {signal("sg")};
  s.top = leaf("T", block(set("sg", 1), delay(2), set("sg", 1), delay(2),
                          set("sg", 0)));
  Counter c;
  Simulator sim(s);
  sim.add_observer(&c);
  (void)sim.run();
  EXPECT_EQ(c.changes, 2);  // 0->1, 1->0; the redundant set is silent
}

TEST(SimEdge, MultipleWaitersAllWake) {
  Specification s;
  s.name = "MW";
  s.vars = {var("sum")};
  s.signals = {signal("go")};
  std::vector<BehaviorPtr> kids;
  for (int i = 0; i < 4; ++i) {
    kids.push_back(leaf("L" + std::to_string(i),
                        block(wait_eq("go", 1),
                              assign("sum", add(ref("sum"), lit(1))))));
  }
  kids.push_back(leaf("Raiser", block(delay(10), set("go", 1))));
  s.top = conc("Top", std::move(kids));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("sum"), 4u);
}

TEST(SimEdge, WaiterOnCompoundConditionWakesOnAnyReferencedSignal) {
  Specification s;
  s.name = "CC";
  s.vars = {var("ok")};
  s.signals = {signal("a"), signal("b")};
  auto waiter = leaf("Waiter", block(wait(lor(eq(ref("a"), lit(1)),
                                              eq(ref("b"), lit(1)))),
                                     assign("ok", lit(1))));
  auto raiser = leaf("Raiser", block(delay(5), set("b", 1)));
  s.top = conc("Top", behaviors(std::move(waiter), std::move(raiser)));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("ok"), 1u);
}

TEST(SimEdge, ReblockingOnPartialCondition) {
  // Waiter needs a AND b; a rises first (spurious wake), then b.
  Specification s;
  s.name = "AB";
  s.vars = {var("ok")};
  s.signals = {signal("a"), signal("b")};
  auto waiter = leaf("Waiter", block(wait(land(eq(ref("a"), lit(1)),
                                               eq(ref("b"), lit(1)))),
                                     assign("ok", lit(1))));
  auto ra = leaf("RA", block(delay(4), set("a", 1)));
  auto rb = leaf("RB", block(delay(9), set("b", 1)));
  s.top = conc("Top", behaviors(std::move(waiter), std::move(ra),
                                std::move(rb)));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("ok"), 1u);
  EXPECT_GE(r.end_time, 9u);
}

TEST(SimEdge, TransitionGuardOnSignal) {
  Specification s;
  s.name = "TG";
  s.vars = {var("r")};
  s.signals = {signal("mode", Type::u8(), 2)};
  auto a = leaf("A", block(nop()));
  auto b = leaf("B", block(assign("r", lit(10))));
  auto c = leaf("C", block(assign("r", lit(20))));
  s.top = seq("Top", behaviors(std::move(a), std::move(b), std::move(c)),
              arcs(on("A", eq(ref("mode"), lit(2)), "C"), done("B"),
                   done("C")));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("r"), 20u);
}

TEST(SimEdge, CompleteArcWithFalseGuardFallsThrough) {
  Specification s;
  s.name = "FA";
  s.vars = {var("r")};
  auto a = leaf("A", block(assign("r", lit(1))));
  auto b = leaf("B", block(assign("r", lit(2))));
  // A -> complete only when r > 5 (false) => falls through to B.
  s.top = seq("Top", behaviors(std::move(a), std::move(b)),
              arcs(done("A", gt(ref("r"), lit(5)))));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("r"), 2u);
}

TEST(SimEdge, ArcOrderDecidesAmongSimultaneouslyTrueGuards) {
  Specification s;
  s.name = "AO";
  s.vars = {var("r", Type::u8(), 7)};
  auto a = leaf("A", block(nop()));
  auto b = leaf("B", block(assign("r", lit(1))));
  auto c = leaf("C", block(assign("r", lit(2))));
  s.top = seq("Top", behaviors(std::move(a), std::move(b), std::move(c)),
              arcs(on("A", gt(ref("r"), lit(0)), "C"),   // first true arc wins
                   on("A", gt(ref("r"), lit(1)), "B"), done("B"), done("C")));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("r"), 2u);
}

TEST(SimEdge, LastWriterWinsOnSameCycleCommit) {
  // Two processes schedule the same signal in the same cycle; commits apply
  // in issue order (process id order), so the later process's value stands.
  Specification s;
  s.name = "LW";
  s.vars = {var("seen")};
  s.signals = {signal("sg", Type::u8())};
  auto w1 = leaf("W1", block(sassign("sg", lit(11))));
  auto w2 = leaf("W2", block(sassign("sg", lit(22))));
  auto rd = leaf("Rd", block(delay(5), assign("seen", ref("sg"))));
  s.top = conc("Top", behaviors(std::move(w1), std::move(w2), std::move(rd)));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("seen"), 22u);
}

TEST(SimEdge, EmptyLeafCompletesImmediately) {
  Specification s;
  s.name = "E";
  s.vars = {var("x")};
  s.top = seq("Top", behaviors(leaf("Empty", {}),
                               leaf("After", block(assign("x", lit(1))))));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("x"), 1u);
}

TEST(SimEdge, WhileFalseOnEntrySkipsBody) {
  auto s = [] {
    Specification sp;
    sp.name = "WF";
    sp.vars = {var("x", Type::u8(), 9), var("ran")};
    sp.top = leaf("T", block(while_(lt(ref("x"), lit(5)),
                                    block(assign("ran", lit(1))))));
    return sp;
  }();
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("ran"), 0u);
}

TEST(SimEdge, BreakInsideIfInsideLoop) {
  Specification s;
  s.name = "BI";
  s.vars = {var("i"), var("post")};
  s.top = leaf("T", block(loop(block(assign("i", add(ref("i"), lit(1))),
                                     if_(ge(ref("i"), lit(2)),
                                         block(break_())))),
                          assign("post", lit(7))));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("i"), 2u);
  EXPECT_EQ(r.final_vars.at("post"), 7u);
}

TEST(SimEdge, NestedProcedureCalls) {
  Specification s;
  s.name = "NP";
  s.vars = {var("r", Type::u16(), 0, true)};
  Procedure inner;
  inner.name = "Inner";
  inner.params.push_back(in_param("a", Type::u16()));
  inner.params.push_back(out_param("o", Type::u16()));
  inner.body = block(assign("o", add(ref("a"), lit(1))));
  Procedure outer;
  outer.name = "Outer";
  outer.params.push_back(in_param("a", Type::u16()));
  outer.params.push_back(out_param("o", Type::u16()));
  outer.locals.emplace_back("t", Type::u16());
  outer.body = block(call("Inner", args(ref("a"), ref("t"))),
                     call("Inner", args(ref("t"), ref("o"))));
  s.procedures.push_back(std::move(inner));
  s.procedures.push_back(std::move(outer));
  s.top = leaf("T", block(call("Outer", args(lit(5), ref("r")))));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("r"), 7u);
}

TEST(SimEdge, RecursionDepthViaSeqNesting) {
  // A deep chain of nested sequential composites exercises the frame stack.
  Specification s;
  s.name = "Deep";
  s.vars = {var("x")};
  BehaviorPtr b = leaf("L", block(assign("x", add(ref("x"), lit(1)))));
  for (int i = 0; i < 40; ++i) {
    b = seq("S" + std::to_string(i), behaviors(std::move(b)));
  }
  s.top = std::move(b);
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("x"), 1u);
  EXPECT_EQ(r.behavior_completions.size(), 41u);
}

TEST(SimEdge, BehaviorScopedObservableTraced) {
  Specification s;
  s.name = "BO";
  auto t = leaf("T", block(assign("local_obs", lit(5)),
                           assign("local_obs", lit(6))));
  t->vars.push_back(var("local_obs", Type::u8(), 0, /*observable=*/true));
  s.top = std::move(t);
  SimResult r = run(s);
  ASSERT_EQ(r.observable_writes.size(), 2u);
  EXPECT_EQ(r.observable_writes[1].value, 6u);
}

}  // namespace
}  // namespace specsyn
