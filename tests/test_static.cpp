// Tests for the static (simulation-free) profile estimator.
#include <gtest/gtest.h>

#include "estimate/rates.h"
#include "estimate/static_profile.h"
#include "spec/builder.h"
#include "workloads/medical.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

TEST(StaticProfile, StraightLineCountsAreExact) {
  Specification s;
  s.name = "S";
  s.vars = {var("x"), var("y")};
  s.top = leaf("T", block(assign("x", lit(1)),
                          assign("y", add(ref("x"), ref("x"))),
                          assign("x", add(ref("x"), ref("y")))));
  ProfileResult p = static_profile(s);
  EXPECT_EQ(p.accesses.at({"T", "x"}).writes, 2u);
  EXPECT_EQ(p.accesses.at({"T", "x"}).reads, 3u);
  EXPECT_EQ(p.accesses.at({"T", "y"}).writes, 1u);
  EXPECT_EQ(p.accesses.at({"T", "y"}).reads, 1u);
}

TEST(StaticProfile, LiteralBoundedLoopRecognized) {
  Specification s;
  s.name = "L";
  s.vars = {var("i"), var("acc")};
  s.top = leaf("T", block(while_(lt(ref("i"), lit(6)),
                                 block(assign("acc", add(ref("acc"),
                                                         ref("i"))),
                                       assign("i", add(ref("i"), lit(2)))))));
  ProfileResult p = static_profile(s);
  // ceil(6/2) = 3 iterations: acc written 3x.
  EXPECT_EQ(p.accesses.at({"T", "acc"}).writes, 3u);
  EXPECT_EQ(p.accesses.at({"T", "i"}).writes, 3u);
  // matches the dynamic count exactly for this recognizable pattern
  ProfileResult d = profile_spec(s);
  EXPECT_EQ(p.accesses.at({"T", "acc"}).writes,
            d.accesses.at({"T", "acc"}).writes);
}

TEST(StaticProfile, UnboundedLoopUsesHeuristic) {
  Specification s;
  s.name = "U";
  s.vars = {var("x"), var("cond")};
  s.top = leaf("T", block(while_(lt(ref("x"), ref("cond")),
                                 block(assign("x", add(ref("x"), lit(1)))))));
  StaticProfileOptions opts;
  opts.default_loop_iters = 7;
  ProfileResult p = static_profile(s, opts);
  EXPECT_EQ(p.accesses.at({"T", "x"}).writes, 7u);
}

TEST(StaticProfile, BranchesWeighted) {
  Specification s;
  s.name = "B";
  s.vars = {var("c"), var("a"), var("b")};
  s.top = leaf("T", block(if_(gt(ref("c"), lit(0)),
                              block(assign("a", lit(1)), assign("a", lit(2))),
                              block(assign("b", lit(1))))));
  StaticProfileOptions opts;
  opts.branch_probability = 0.5;
  ProfileResult p = static_profile(s, opts);
  // then: 2 writes * 0.5 = 1; else: 1 * 0.5 rounds to >= 1.
  EXPECT_EQ(p.accesses.at({"T", "a"}).writes, 1u);
  EXPECT_EQ(p.accesses.at({"T", "b"}).writes, 1u);
}

TEST(StaticProfile, SeqBackArcsIterate) {
  Specification s;
  s.name = "R";
  s.vars = {var("n")};
  auto inc = leaf("Inc", block(assign("n", add(ref("n"), lit(1)))));
  s.top = seq("Top", behaviors(std::move(inc)),
              arcs(on("Inc", lt(ref("n"), lit(4)), "Inc"), done("Inc")));
  StaticProfileOptions opts;
  opts.default_loop_iters = 4;
  ProfileResult p = static_profile(s, opts);
  EXPECT_EQ(p.accesses.at({"Inc", "n"}).writes, 4u);
  EXPECT_EQ(p.behaviors.at("Inc").activations, 4u);
  // Guard reads attributed to the composite.
  EXPECT_GE(p.accesses.at({"Top", "n"}).reads, 4u);
}

TEST(StaticProfile, ConcurrentDurationIsMax) {
  Specification s;
  s.name = "C";
  s.vars = {var("a"), var("b")};
  auto fast = leaf("Fast", block(assign("a", lit(1))));
  auto slow = leaf("Slow", block(delay(40), assign("b", lit(1))));
  s.top = conc("Top", behaviors(std::move(fast), std::move(slow)));
  ProfileResult p = static_profile(s);
  // Total estimated duration dominated by the slow branch, not the sum.
  EXPECT_GE(p.sim.end_time, 40u);
  EXPECT_LT(p.sim.end_time, 60u);
}

TEST(StaticProfile, MedicalMatchesChannelCountExactly) {
  Specification spec = make_medical_system();
  ProfileResult stat = static_profile(spec);
  ProfileResult dyn = profile_spec(spec);
  EXPECT_EQ(stat.channel_count(), dyn.channel_count());
  // Every dynamically exercised channel is present statically.
  for (const auto& [key, counts] : dyn.accesses) {
    EXPECT_EQ(stat.accesses.count(key), 1u)
        << key.first << " -> " << key.second;
    (void)counts;
  }
}

TEST(StaticProfile, PlugsIntoBusRates) {
  Specification spec = testing::medical_like_spec();
  AccessGraph g = build_access_graph(spec);
  Partition part(spec, Allocation::proc_plus_asic());
  part.assign_behavior("L2", 1);
  part.assign_behavior("L3", 1);
  part.auto_assign_vars(g);
  ProfileResult stat = static_profile(spec);
  BusPlan plan = BusPlan::build(part, g, ImplModel::Model2);
  BusRateReport r = bus_rates(stat, part, plan, 100e6);
  EXPECT_GT(r.max_rate(), 0.0);
  EXPECT_GT(r.bus_mbps.size(), 1u);
}

}  // namespace
}  // namespace specsyn
