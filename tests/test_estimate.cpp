// Tests for profiling, transfer-rate estimation and the cost model.
#include <gtest/gtest.h>

#include "estimate/cost.h"
#include "estimate/profile.h"
#include "estimate/rates.h"
#include "refine/refiner.h"
#include "spec/builder.h"
#include "workloads/medical.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

TEST(Profile, AccessCountsAndLifetimes) {
  Specification s;
  s.name = "P";
  s.vars = {var("x"), var("y")};
  s.top = seq("Top", behaviors(
      leaf("A", block(assign("x", lit(1)), assign("x", add(ref("x"), lit(1))))),
      leaf("B", block(assign("y", ref("x"))))));
  ProfileResult p = profile_spec(s);
  const AccessCounts& ax = p.accesses.at({"A", "x"});
  EXPECT_EQ(ax.writes, 2u);
  EXPECT_EQ(ax.reads, 1u);
  const AccessCounts& bx = p.accesses.at({"B", "x"});
  EXPECT_EQ(bx.reads, 1u);
  EXPECT_EQ(p.accesses.at({"B", "y"}).writes, 1u);
  // Lifetimes: B starts after A.
  EXPECT_GE(p.behaviors.at("B").first_start, p.behaviors.at("A").last_end);
  EXPECT_EQ(p.behaviors.at("A").activations, 1u);
  EXPECT_GT(p.behaviors.at("Top").lifetime(),
            p.behaviors.at("A").lifetime());
}

TEST(Profile, RepeatedActivationAccumulates) {
  Specification s;
  s.name = "R";
  s.vars = {var("n", Type::u8())};
  auto inc = leaf("Inc", block(assign("n", add(ref("n"), lit(1)))));
  s.top = seq("Top", behaviors(std::move(inc)),
              arcs(on("Inc", lt(ref("n"), lit(5)), "Inc"), done("Inc")));
  ProfileResult p = profile_spec(s);
  EXPECT_EQ(p.behaviors.at("Inc").activations, 5u);
  EXPECT_EQ(p.accesses.at({"Inc", "n"}).writes, 5u);
  // Guard reads attribute to the composite.
  EXPECT_EQ(p.accesses.at({"Top", "n"}).reads, 5u);
}

TEST(Rates, ChannelAndBusAggregation) {
  Specification s = testing::medical_like_spec();
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("L2", 1);
  part.assign_behavior("L3", 1);
  part.assign_behavior("L4", 1);
  part.assign_behavior("L5", 1);
  part.auto_assign_vars(g);
  ProfileResult prof = profile_spec(s);

  BusPlan plan1 = BusPlan::build(part, g, ImplModel::Model1);
  BusRateReport r1 = bus_rates(prof, part, plan1, 100e6);
  // Everything on one bus: its rate equals the sum of all channel rates.
  double sum = 0;
  for (const ChannelRate& c : r1.channels) sum += c.mbits_per_s;
  EXPECT_GT(sum, 0.0);
  EXPECT_NEAR(r1.rate_of("gbus"), sum, 1e-9);
  EXPECT_NEAR(r1.max_rate(), sum, 1e-9);

  BusPlan plan2 = BusPlan::build(part, g, ImplModel::Model2);
  BusRateReport r2 = bus_rates(prof, part, plan2, 100e6);
  // Model2 splits local traffic off the shared bus: the global bus carries
  // strictly less than Model1's single bus.
  EXPECT_LT(r2.rate_of("gbus"), r1.rate_of("gbus"));
  EXPECT_GT(r2.rate_of("lbus_PROC"), 0.0);
  // No traffic lost: totals match (every channel mapped to exactly one bus
  // in Models 1-3).
  EXPECT_NEAR(r2.total_rate(), r1.total_rate(), 1e-9);

  BusPlan plan3 = BusPlan::build(part, g, ImplModel::Model3);
  BusRateReport r3 = bus_rates(prof, part, plan3, 100e6);
  // Distributing global traffic can only lower the peak.
  EXPECT_LE(r3.max_rate(), r2.max_rate() + 1e-9);

  BusPlan plan4 = BusPlan::build(part, g, ImplModel::Model4);
  BusRateReport r4 = bus_rates(prof, part, plan4, 100e6);
  // Remote channels traverse three buses -> total exceeds Model1's.
  EXPECT_GT(r4.total_rate(), r1.total_rate() - 1e-9);
  // Request/inter legs carry exactly the cross traffic, hence equal rates
  // (the paper's b2=b3=b4 column).
  double inter = r4.rate_of("interbus");
  double req_total = 0;
  for (const auto& [bus, rate] : r4.bus_mbps) {
    if (bus.rfind("reqbus_", 0) == 0) req_total += rate;
  }
  EXPECT_NEAR(inter, req_total, 1e-9);
}

TEST(Rates, ScaleWithClock) {
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  ProfileResult prof = profile_spec(s);
  BusPlan plan = BusPlan::build(part, g, ImplModel::Model1);
  BusRateReport slow = bus_rates(prof, part, plan, 50e6);
  BusRateReport fast = bus_rates(prof, part, plan, 100e6);
  EXPECT_NEAR(fast.max_rate(), 2 * slow.max_rate(), 1e-9);
}

TEST(Cost, ModelOrderingOnMedical) {
  Specification s = make_medical_system();
  AccessGraph g = build_access_graph(s);
  auto d = make_medical_design(s, g, 1);
  ProfileResult prof = profile_spec(s);

  std::map<ImplModel, CostReport> costs;
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model2, ImplModel::Model3,
                      ImplModel::Model4}) {
    RefineConfig cfg;
    cfg.model = m;
    RefineResult r = refine(d.partition, g, cfg);
    BusRateReport rates = bus_rates(prof, d.partition, r.plan, 100e6);
    costs[m] = estimate_cost(r, rates);
  }
  // Structural expectations from the paper's discussion.
  EXPECT_EQ(costs[ImplModel::Model1].buses, 1u);
  EXPECT_GT(costs[ImplModel::Model3].buses, costs[ImplModel::Model2].buses);
  EXPECT_EQ(costs[ImplModel::Model1].memories, 2u);
  EXPECT_EQ(costs[ImplModel::Model4].memories, 2u);
  EXPECT_GE(costs[ImplModel::Model2].memories, 3u);
  EXPECT_GT(costs[ImplModel::Model4].interfaces, 0u);
  EXPECT_EQ(costs[ImplModel::Model1].interfaces, 0u);
  // Model1 concentrates all traffic on one bus: highest peak pressure.
  EXPECT_GE(costs[ImplModel::Model1].peak_bus_mbps,
            costs[ImplModel::Model3].peak_bus_mbps);
  for (const auto& [m, c] : costs) EXPECT_GT(c.total, 0.0);
}

TEST(Cost, WeightsAreRespected) {
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  RefineConfig cfg;
  cfg.model = ImplModel::Model1;
  RefineResult r = refine(part, g, cfg);
  ProfileResult prof = profile_spec(s);
  BusRateReport rates = bus_rates(prof, part, r.plan, 100e6);
  CostWeights zero;
  zero.per_bus = zero.per_bus_wire = zero.per_memory = zero.per_memory_port =
      zero.per_memory_bit = zero.per_arbiter = zero.per_interface =
          zero.per_mbps_peak = 0.0;
  EXPECT_EQ(estimate_cost(r, rates, zero).total, 0.0);
  CostWeights only_bus;
  only_bus = zero;
  only_bus.per_bus = 7.0;
  EXPECT_NEAR(estimate_cost(r, rates, only_bus).total, 7.0, 1e-9);
}

}  // namespace
}  // namespace specsyn
