// Tests for the static refinement verifier (src/analysis).
//
// Two halves:
//  * refiner output is CLEAN — every model x protocol x scheme combination
//    of the medical workload produces a report with zero findings, and
//  * every checker is LIVE — hand-corrupting a refined specification (drop
//    an ack wait, overlap two decodes, swap arbiter priorities, bypass the
//    bus, ...) fires exactly the documented diagnostic code.
#include <gtest/gtest.h>

#include <functional>

#include "analysis/context.h"
#include "analysis/verifier.h"
#include "graph/access_graph.h"
#include "refine/refiner.h"
#include "spec/builder.h"
#include "workloads/medical.h"

namespace specsyn {
namespace {

using namespace build;

std::string dump(const analysis::Report& rep) {
  std::string out;
  for (const analysis::Finding& f : rep.findings) out += f.str() + "\n";
  return out;
}

/// Medical workload, design 1, refined to the given configuration.
Specification refined_medical(ImplModel model,
                              ProtocolStyle proto = ProtocolStyle::FullHandshake,
                              LeafScheme scheme = LeafScheme::LoopLeaf,
                              bool inline_protocols = true) {
  static Specification spec = make_medical_system();
  static AccessGraph graph = build_access_graph(spec);
  PartitionerResult design = make_medical_design(spec, graph, 1);
  RefineConfig cfg;
  cfg.model = model;
  cfg.protocol = proto;
  cfg.leaf_scheme = scheme;
  cfg.inline_protocols = inline_protocols;
  return refine(design.partition, graph, cfg).refined;
}

// -- mutation helpers --------------------------------------------------------

void for_each_stmt(StmtList& list, const std::function<void(Stmt&)>& fn) {
  for (StmtPtr& s : list) {
    if (!s) continue;
    fn(*s);
    for_each_stmt(s->then_block, fn);
    for_each_stmt(s->else_block, fn);
  }
}

void erase_stmts(StmtList& list, const std::function<bool(const Stmt&)>& pred) {
  for (auto it = list.begin(); it != list.end();) {
    if (*it && pred(**it)) {
      it = list.erase(it);
      continue;
    }
    if (*it) {
      erase_stmts((*it)->then_block, pred);
      erase_stmts((*it)->else_block, pred);
    }
    ++it;
  }
}

/// Deletes, in the first leaf that contains a match, every statement matching
/// `pred`. Returns the mutated leaf's name ("" when nothing matched).
std::string erase_in_first_leaf(Specification& spec,
                                const std::function<bool(const Stmt&)>& pred) {
  std::string hit;
  spec.top->for_each([&](Behavior& b) {
    if (!hit.empty() || !b.is_leaf()) return;
    bool found = false;
    for_each_stmt(b.body, [&](Stmt& s) {
      if (pred(s)) found = true;
    });
    if (!found) return;
    erase_stmts(b.body, pred);
    hit = b.name;
  });
  return hit;
}

bool is_sassign_level(const Stmt& s, const std::string& name, uint64_t level) {
  return s.kind == Stmt::Kind::SignalAssign && s.target == name && s.expr &&
         s.expr->kind == Expr::Kind::IntLit && s.expr->int_value == level;
}

void delete_behavior(Specification& spec, const std::string& name) {
  Behavior* parent = spec.parent_of(name);
  ASSERT_NE(parent, nullptr) << "no parent for " << name;
  for (auto it = parent->children.begin(); it != parent->children.end();
       ++it) {
    if ((*it)->name == name) {
      parent->children.erase(it);
      return;
    }
  }
  FAIL() << "behavior not found: " << name;
}

/// First behavior whose name ends with `suffix`, or empty.
std::string find_by_suffix(const Specification& spec,
                           const std::string& suffix) {
  for (const Behavior* b : spec.all_behaviors()) {
    if (b->name.size() >= suffix.size() &&
        b->name.compare(b->name.size() - suffix.size(), suffix.size(),
                        suffix) == 0) {
      return b->name;
    }
  }
  return {};
}

/// The six-signal bundle declarations of one hand-built bus.
void declare_bus(Specification& spec, const std::string& bus) {
  spec.signals.push_back(signal(bus + "_start"));
  spec.signals.push_back(signal(bus + "_done"));
  spec.signals.push_back(signal(bus + "_rd"));
  spec.signals.push_back(signal(bus + "_wr"));
  spec.signals.push_back(signal(bus + "_addr", Type::u32()));
  spec.signals.push_back(signal(bus + "_data", Type::u32()));
}

/// One complete inlined master read of `addr` on `bus` (Figure 5(d)).
StmtList master_read(const std::string& bus, uint64_t addr,
                     const std::string& into) {
  return block(sassign(bus + "_rd", lit(1, Type::bit())),
               sassign(bus + "_addr", lit(addr)),
               sassign(bus + "_start", lit(1, Type::bit())),
               wait_eq(bus + "_done", 1), assign(into, ref(bus + "_data")),
               sassign(bus + "_rd", lit(0, Type::bit())),
               sassign(bus + "_start", lit(0, Type::bit())),
               wait_eq(bus + "_done", 0));
}

/// A one-variable memory server on `bus` at `addr` (Figure 5(c)).
BehaviorPtr memory_leaf(const std::string& name, const std::string& bus,
                        uint64_t addr, const std::string& var_name) {
  auto b = leaf(
      name,
      block(loop(block(
          wait(land(eq(ref(bus + "_start"), lit(1, Type::bit())),
                    eq(ref(bus + "_addr"), lit(addr)))),
          if_(eq(ref(bus + "_rd"), lit(1, Type::bit())),
              block(if_(eq(ref(bus + "_addr"), lit(addr)),
                        block(sassign(bus + "_data", ref(var_name)))))),
          if_(eq(ref(bus + "_wr"), lit(1, Type::bit())),
              block(if_(eq(ref(bus + "_addr"), lit(addr)),
                        block(assign(var_name, ref(bus + "_data")))))),
          set(bus + "_done", 1), wait_eq(bus + "_start", 0),
          set(bus + "_done", 0)))));
  b->vars.push_back(var(var_name, Type::u32()));
  return b;
}

// -- the refiner's output is clean -------------------------------------------

TEST(Analysis, MedicalModelsAreClean) {
  for (const ImplModel m : {ImplModel::Model1, ImplModel::Model2,
                            ImplModel::Model3, ImplModel::Model4}) {
    for (const ProtocolStyle p :
         {ProtocolStyle::FullHandshake, ProtocolStyle::ByteSerial}) {
      const Specification spec = refined_medical(m, p);
      const analysis::Report rep = analysis::analyze(spec);
      EXPECT_TRUE(rep.clean())
          << "model " << static_cast<int>(m) << " proto "
          << static_cast<int>(p) << ":\n"
          << dump(rep);
    }
  }
}

TEST(Analysis, WrapperSchemeAndSharedProceduresAreClean) {
  for (const bool inl : {true, false}) {
    const Specification spec =
        refined_medical(ImplModel::Model4, ProtocolStyle::ByteSerial,
                        LeafScheme::WrapperSeq, inl);
    const analysis::Report rep = analysis::analyze(spec);
    EXPECT_TRUE(rep.clean()) << "inline=" << inl << ":\n" << dump(rep);
  }
}

TEST(Analysis, ContextRecoversBusStructure) {
  const Specification spec = refined_medical(ImplModel::Model2);
  const analysis::Context ctx(spec);
  // The analysis is only meaningful if the walk actually recovered the
  // refiner's structure: buses, masters, serve loops, address traffic.
  EXPECT_FALSE(ctx.topology().buses.empty());
  EXPECT_FALSE(ctx.masters().empty());
  EXPECT_FALSE(ctx.accesses().empty());
  bool any_serve_loop = false;
  for (const analysis::SlavePort& sp : ctx.slaves()) {
    any_serve_loop |= sp.serve_loop;
  }
  EXPECT_TRUE(any_serve_loop);
  bool any_mediated = false;
  for (const auto& [name, accesses] : ctx.var_access()) {
    (void)name;
    for (const analysis::VarAccess& a : accesses) any_mediated |= a.bus_mediated;
  }
  EXPECT_TRUE(any_mediated);
  // Model2's single shared bus is arbitrated; the priority chain of its
  // arbiter must be recognized in declaration order.
  bool any_chain = false;
  for (uint32_t bus = 0; bus < ctx.topology().buses.size(); ++bus) {
    const std::vector<int32_t> chain = ctx.arbiter_chain(bus);
    if (chain.empty()) continue;
    any_chain = true;
    EXPECT_EQ(chain.size(), ctx.topology().buses[bus].masters.size());
  }
  EXPECT_TRUE(any_chain);
}

// -- mutation tests: each checker is live ------------------------------------

TEST(AnalysisMutation, DroppedStartDeassertFiresSA001) {
  Specification spec = refined_medical(ImplModel::Model1);
  const BusTopology topo = BusTopology::discover(spec);
  // In the first master leaf, delete every `<bus>_start <= 0`.
  const std::string leaf_name = erase_in_first_leaf(spec, [&](const Stmt& s) {
    return s.kind == Stmt::Kind::SignalAssign && s.expr &&
           s.expr->kind == Expr::Kind::IntLit && s.expr->int_value == 0 &&
           topo.role_of(s.target).role == BusSignalRole::Start;
  });
  ASSERT_FALSE(leaf_name.empty());
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA001")) << dump(rep);
}

TEST(AnalysisMutation, DroppedDonePulseFiresSA002) {
  Specification spec = refined_medical(ImplModel::Model1);
  const BusTopology topo = BusTopology::discover(spec);
  const std::string leaf_name = erase_in_first_leaf(spec, [&](const Stmt& s) {
    return s.kind == Stmt::Kind::SignalAssign && s.expr &&
           s.expr->kind == Expr::Kind::IntLit && s.expr->int_value == 1 &&
           topo.role_of(s.target).role == BusSignalRole::Done;
  });
  ASSERT_FALSE(leaf_name.empty());
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA002")) << dump(rep);
}

TEST(AnalysisMutation, DroppedAckWaitFiresSA003) {
  // Model2: every master on the single shared bus acquires it via req/ack.
  Specification spec = refined_medical(ImplModel::Model2);
  const BusTopology topo = BusTopology::discover(spec);
  const std::string leaf_name = erase_in_first_leaf(spec, [&](const Stmt& s) {
    if (s.kind != Stmt::Kind::Wait || !s.expr) return false;
    std::vector<std::string> names;
    s.expr->collect_names(names);
    for (const std::string& n : names) {
      if (topo.role_of(n).role == BusSignalRole::Ack) return true;
    }
    return false;
  });
  ASSERT_FALSE(leaf_name.empty());
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA003")) << dump(rep);
}

TEST(AnalysisMutation, BusHoldCycleFiresSA010) {
  // Two forwarding servers, each serving one bus while mastering the other:
  // the textbook hold-and-wait cycle.
  Specification spec;
  spec.name = "deadlock";
  declare_bus(spec, "A");
  declare_bus(spec, "B");
  auto serve_and_forward = [](const std::string& name, const std::string& in,
                              const std::string& out) {
    auto b = leaf(name,
                  block(loop(block(
                      wait(eq(ref(in + "_start"), lit(1, Type::bit()))),
                      sassign(out + "_rd", lit(1, Type::bit())),
                      sassign(out + "_addr", lit(0)),
                      sassign(out + "_start", lit(1, Type::bit())),
                      wait_eq(out + "_done", 1),
                      assign(name + "_buf", ref(out + "_data")),
                      sassign(out + "_rd", lit(0, Type::bit())),
                      sassign(out + "_start", lit(0, Type::bit())),
                      wait_eq(out + "_done", 0), set(in + "_done", 1),
                      wait_eq(in + "_start", 0), set(in + "_done", 0)))));
    b->vars.push_back(var(name + "_buf", Type::u32()));
    return b;
  };
  spec.top = conc("SYS", behaviors(serve_and_forward("F1", "A", "B"),
                                   serve_and_forward("F2", "B", "A")));
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA010")) << dump(rep);
}

TEST(AnalysisMutation, UnsatisfiableWaitFiresSA011) {
  Specification spec;
  spec.name = "stuck";
  spec.signals.push_back(signal("go"));
  spec.top = conc("SYS", behaviors(leaf("W", block(wait_eq("go", 1),
                                                   assign("x", lit(1)))),
                                   leaf("P", block(assign("y", lit(2))))));
  spec.top->children[0]->vars.push_back(var("x", Type::u32()));
  spec.top->children[1]->vars.push_back(var("y", Type::u32()));
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA011")) << dump(rep);
}

TEST(AnalysisMutation, BusBypassFiresSA020) {
  Specification spec = refined_medical(ImplModel::Model1);
  // Pick a variable the refiner put behind a bus (a mediated access exists),
  // then write it directly from a control stub in another subtree — exactly
  // the access data refinement exists to rewrite.
  std::string victim;
  {
    const analysis::Context ctx(spec);
    for (const auto& [name, accesses] : ctx.var_access()) {
      for (const analysis::VarAccess& a : accesses) {
        if (a.bus_mediated) {
          victim = name;
          break;
        }
      }
      if (!victim.empty()) break;
    }
  }
  ASSERT_FALSE(victim.empty());
  const std::string stub = find_by_suffix(spec, "_CTRL");
  ASSERT_FALSE(stub.empty());
  spec.find_behavior(stub)->body.push_back(assign(victim, lit(7)));
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA020")) << dump(rep);
}

TEST(AnalysisMutation, OverlappingDecodesFireSA030) {
  // Two memories on one bus both decoding address 0.
  Specification spec;
  spec.name = "overlap";
  declare_bus(spec, "G");
  auto master = leaf("M", master_read("G", 0, "t"));
  master->vars.push_back(var("t", Type::u32()));
  spec.top = conc("SYS", behaviors(std::move(master),
                                   memory_leaf("MEM1", "G", 0, "v1"),
                                   memory_leaf("MEM2", "G", 0, "v2")));
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA030")) << dump(rep);
}

TEST(AnalysisMutation, UnmappedMasterAddressFiresSA031) {
  Specification spec = refined_medical(ImplModel::Model1);
  const BusTopology topo = BusTopology::discover(spec);
  // Retarget the first literal master address to far outside the map.
  bool done = false;
  spec.top->for_each([&](Behavior& b) {
    if (done || !b.is_leaf()) return;
    for_each_stmt(b.body, [&](Stmt& s) {
      if (!done && s.kind == Stmt::Kind::SignalAssign && s.expr &&
          s.expr->kind == Expr::Kind::IntLit &&
          topo.role_of(s.target).role == BusSignalRole::Addr) {
        s.expr->int_value += 100000;
        done = true;
      }
    });
  });
  ASSERT_TRUE(done);
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA031")) << dump(rep);
}

TEST(AnalysisMutation, DeadDecodeFiresSA032) {
  // The slave serves addresses 0 and 7; no master ever addresses 7.
  Specification spec;
  spec.name = "dead_decode";
  declare_bus(spec, "G");
  auto master = leaf("M", master_read("G", 0, "t"));
  master->vars.push_back(var("t", Type::u32()));
  auto mem = leaf(
      "MEM",
      block(loop(block(
          wait(land(eq(ref("G_start"), lit(1, Type::bit())),
                    lor(eq(ref("G_addr"), lit(0)),
                        eq(ref("G_addr"), lit(7))))),
          if_(eq(ref("G_rd"), lit(1, Type::bit())),
              block(if_(eq(ref("G_addr"), lit(0)),
                        block(sassign("G_data", ref("v1")))),
                    if_(eq(ref("G_addr"), lit(7)),
                        block(sassign("G_data", ref("v2")))))),
          if_(eq(ref("G_wr"), lit(1, Type::bit())),
              block(if_(eq(ref("G_addr"), lit(0)),
                        block(assign("v1", ref("G_data")))),
                    if_(eq(ref("G_addr"), lit(7)),
                        block(assign("v2", ref("G_data")))))),
          set("G_done", 1), wait_eq("G_start", 0), set("G_done", 0)))));
  mem->vars.push_back(var("v1", Type::u32()));
  mem->vars.push_back(var("v2", Type::u32()));
  spec.top = conc("SYS", behaviors(std::move(master), std::move(mem)));
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA032")) << dump(rep);
  EXPECT_FALSE(rep.has("SA031")) << dump(rep);
}

TEST(AnalysisMutation, DeletedArbiterFiresSA040) {
  Specification spec = refined_medical(ImplModel::Model2);
  std::string arb_name;
  for (const Behavior* b : spec.all_behaviors()) {
    if (b->name.rfind("ARB_", 0) == 0) arb_name = b->name;
  }
  ASSERT_FALSE(arb_name.empty());
  delete_behavior(spec, arb_name);
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA040")) << dump(rep);
}

TEST(AnalysisMutation, SwappedArbiterPrioritiesFireSA041) {
  Specification spec = refined_medical(ImplModel::Model2);
  std::string arb_name;
  for (const Behavior* b : spec.all_behaviors()) {
    if (b->name.rfind("ARB_", 0) == 0) arb_name = b->name;
  }
  ASSERT_FALSE(arb_name.empty());
  Behavior* arb = spec.find_behavior(arb_name);
  // Swap the request conditions of the outer if and its first nested else-if:
  // the arbiter then tests priorities out of declaration order.
  Stmt* outer = nullptr;
  for_each_stmt(arb->body, [&](Stmt& s) {
    if (outer == nullptr && s.kind == Stmt::Kind::If) outer = &s;
  });
  ASSERT_NE(outer, nullptr);
  ASSERT_FALSE(outer->else_block.empty());
  Stmt* inner = outer->else_block.front().get();
  ASSERT_EQ(inner->kind, Stmt::Kind::If);
  std::swap(outer->expr, inner->expr);
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA041")) << dump(rep);
}

TEST(AnalysisMutation, DeletedServerFiresSA050) {
  Specification spec = refined_medical(ImplModel::Model1);
  const std::string server = find_by_suffix(spec, "_NEW");
  ASSERT_FALSE(server.empty());
  delete_behavior(spec, server);
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA050")) << dump(rep);
}

TEST(AnalysisMutation, DeletedStubFiresSA051) {
  Specification spec = refined_medical(ImplModel::Model1);
  const std::string stub = find_by_suffix(spec, "_CTRL");
  ASSERT_FALSE(stub.empty());
  delete_behavior(spec, stub);
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA051")) << dump(rep);
}

TEST(AnalysisMutation, BrokenStubHandshakeFiresSA052) {
  Specification spec = refined_medical(ImplModel::Model1);
  const std::string stub = find_by_suffix(spec, "_CTRL");
  ASSERT_FALSE(stub.empty());
  Behavior* b = spec.find_behavior(stub);
  // The stub pulses <B>_start; removing the deassert breaks the 4-phase
  // shape without touching stub or server uniqueness.
  const std::string start_sig = stub.substr(0, stub.size() - 5) + "_start";
  erase_stmts(b->body, [&](const Stmt& s) {
    return is_sassign_level(s, start_sig, 0);
  });
  const analysis::Report rep = analysis::analyze(spec);
  EXPECT_TRUE(rep.has("SA052")) << dump(rep);
}

TEST(Analysis, JsonReportIsWellFormed) {
  Specification spec = refined_medical(ImplModel::Model1);
  const std::string stub = find_by_suffix(spec, "_CTRL");
  ASSERT_FALSE(stub.empty());
  delete_behavior(spec, stub);
  const analysis::Report rep = analysis::analyze(spec);
  const std::string json = rep.json(spec.name);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"SA051\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
}

}  // namespace
}  // namespace specsyn
