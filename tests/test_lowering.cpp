// Differential tests for the compiled execution tiers: the lowered
// interpreter (sim/program.h + interp_lowered.cpp) and the bytecode
// interpreter (sim/bytecode.h + interp_bytecode.cpp) must both be
// observationally indistinguishable from the legacy tree-walking
// interpreter — identical SimResult, identical observer callback streams,
// identical profiles — on every workload the repo can produce.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "estimate/profile.h"
#include "parser/parser.h"
#include "refine/refiner.h"
#include "sim/simulator.h"
#include "spec/builder.h"
#include "workloads/answering.h"
#include "workloads/medical.h"
#include "workloads/synthetic.h"

namespace specsyn {
namespace {

SimResult simulate(const Specification& spec, ExecTier tier,
                   SimObserver* obs = nullptr) {
  SimConfig cfg;
  cfg.exec_tier = tier;
  Simulator sim(spec, cfg);
  if (obs != nullptr) sim.add_observer(obs);
  return sim.run();
}

void expect_same_result(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.root_completed, b.root_completed);
  EXPECT_EQ(a.final_vars, b.final_vars);
  EXPECT_EQ(a.observable_writes, b.observable_writes);
  EXPECT_EQ(a.behavior_completions, b.behavior_completions);

  ASSERT_EQ(a.blocked.size(), b.blocked.size());
  for (size_t i = 0; i < a.blocked.size(); ++i) {
    EXPECT_EQ(a.blocked[i].process_id, b.blocked[i].process_id);
    EXPECT_EQ(a.blocked[i].behavior, b.blocked[i].behavior);
    EXPECT_EQ(a.blocked[i].waiting_on, b.blocked[i].waiting_on);
  }
}

void expect_identical_results(const Specification& spec) {
  const SimResult legacy = simulate(spec, ExecTier::Tree);
  {
    SCOPED_TRACE("lowered vs tree");
    expect_same_result(simulate(spec, ExecTier::Lowered), legacy);
  }
  {
    SCOPED_TRACE("bytecode vs tree");
    expect_same_result(simulate(spec, ExecTier::Bytecode), legacy);
  }
}

TEST(LoweringDifferential, MedicalSystem) {
  expect_identical_results(make_medical_system());
}

TEST(LoweringDifferential, AnsweringMachine) {
  expect_identical_results(make_answering_machine());
}

// The paper's full implementation-model axis under both bus protocols: every
// refined medical spec must agree across all three execution tiers.
TEST(LoweringDifferential, RefinedMedicalAllModels) {
  const Specification spec = make_medical_system();
  AccessGraph graph = build_access_graph(spec);
  auto d = make_medical_design(spec, graph, 1);
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model2, ImplModel::Model3,
                      ImplModel::Model4}) {
    for (ProtocolStyle p :
         {ProtocolStyle::FullHandshake, ProtocolStyle::ByteSerial}) {
      RefineConfig cfg;
      cfg.model = m;
      cfg.protocol = p;
      RefineResult r = refine(d.partition, graph, cfg);
      SCOPED_TRACE(std::string(to_string(m)) +
                   (p == ProtocolStyle::FullHandshake ? "/hs" : "/bs"));
      expect_identical_results(r.refined);
    }
  }
}

TEST(LoweringDifferential, SyntheticSweep) {
  for (uint64_t seed : {1u, 7u, 11u, 23u}) {
    SyntheticOptions opts;
    opts.seed = seed;
    opts.leaf_behaviors = 12;
    opts.variables = 16;
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_identical_results(make_synthetic_spec(opts));
  }
}

// The example .spec files exercise the parser front end; the compiled tiers
// must agree on specs that arrive as text, not just programmatic builders.
TEST(LoweringDifferential, ExampleSpecFiles) {
  for (const char* rel :
       {"/examples/specs/producer_consumer.spec",
        "/examples/specs/traffic_light.spec"}) {
    SCOPED_TRACE(rel);
    std::ifstream in(std::string(SPECSYN_SOURCE_DIR) + rel);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    DiagnosticSink diags;
    std::optional<Specification> spec = parse_spec(buf.str(), diags);
    ASSERT_TRUE(spec.has_value()) << diags.str();
    expect_identical_results(*spec);
  }
}

// Records every observer callback as a printable line so whole streams can
// be compared; proves the compiled observer fast paths fire the same events
// at the same times in the same order.
class RecordingObserver : public SimObserver {
 public:
  void on_var_read(const std::string& var, const std::string& behavior,
                   uint64_t time) override {
    add("read", var, behavior, time, 0);
  }
  void on_var_write(const std::string& var, const std::string& behavior,
                    uint64_t time, uint64_t value) override {
    add("write", var, behavior, time, value);
  }
  void on_behavior_start(const std::string& behavior, uint64_t time) override {
    add("start", behavior, "", time, 0);
  }
  void on_behavior_end(const std::string& behavior, uint64_t time) override {
    add("end", behavior, "", time, 0);
  }
  void on_signal_change(const std::string& signal, uint64_t time,
                        uint64_t value) override {
    add("signal", signal, "", time, value);
  }

  std::vector<std::string> events;

 private:
  void add(const char* kind, const std::string& a, const std::string& b,
           uint64_t time, uint64_t value) {
    events.push_back(std::string(kind) + " " + a + " " + b + " @" +
                     std::to_string(time) + " = " + std::to_string(value));
  }
};

TEST(LoweringDifferential, ObserverStreamsIdentical) {
  const Specification spec = make_medical_system();
  RecordingObserver lowered;
  RecordingObserver bytecode;
  RecordingObserver legacy;
  simulate(spec, ExecTier::Lowered, &lowered);
  simulate(spec, ExecTier::Bytecode, &bytecode);
  simulate(spec, ExecTier::Tree, &legacy);
  ASSERT_FALSE(lowered.events.empty());
  EXPECT_EQ(lowered.events, legacy.events);
  EXPECT_EQ(bytecode.events, legacy.events);
}

TEST(LoweringDifferential, ObserverStreamsIdenticalRefined) {
  const Specification spec = make_medical_system();
  AccessGraph graph = build_access_graph(spec);
  auto d = make_medical_design(spec, graph, 1);
  RefineConfig cfg;
  cfg.model = ImplModel::Model2;
  RefineResult r = refine(d.partition, graph, cfg);
  RecordingObserver lowered;
  RecordingObserver bytecode;
  RecordingObserver legacy;
  simulate(r.refined, ExecTier::Lowered, &lowered);
  simulate(r.refined, ExecTier::Bytecode, &bytecode);
  simulate(r.refined, ExecTier::Tree, &legacy);
  ASSERT_FALSE(lowered.events.empty());
  EXPECT_EQ(lowered.events, legacy.events);
  EXPECT_EQ(bytecode.events, legacy.events);
}

TEST(LoweringDifferential, ProfilesIdentical) {
  const Specification spec = make_medical_system();
  SimConfig lowered_cfg;
  lowered_cfg.exec_tier = ExecTier::Lowered;
  SimConfig bytecode_cfg;
  bytecode_cfg.exec_tier = ExecTier::Bytecode;
  SimConfig legacy_cfg;
  legacy_cfg.exec_tier = ExecTier::Tree;
  const ProfileResult legacy = profile_spec(spec, legacy_cfg);
  for (const SimConfig& cfg : {lowered_cfg, bytecode_cfg}) {
    SCOPED_TRACE(exec_tier_name(cfg.exec_tier));
    const ProfileResult compiled = profile_spec(spec, cfg);

    ASSERT_EQ(compiled.behaviors.size(), legacy.behaviors.size());
    for (const auto& [name, prof] : compiled.behaviors) {
      auto it = legacy.behaviors.find(name);
      ASSERT_NE(it, legacy.behaviors.end()) << name;
      EXPECT_EQ(prof.activations, it->second.activations) << name;
      EXPECT_EQ(prof.first_start, it->second.first_start) << name;
      EXPECT_EQ(prof.last_end, it->second.last_end) << name;
    }
    ASSERT_EQ(compiled.accesses.size(), legacy.accesses.size());
    for (const auto& [channel, counts] : compiled.accesses) {
      auto it = legacy.accesses.find(channel);
      ASSERT_NE(it, legacy.accesses.end());
      EXPECT_EQ(counts.reads, it->second.reads);
      EXPECT_EQ(counts.writes, it->second.writes);
    }
    EXPECT_EQ(compiled.sim.steps, legacy.sim.steps);
    EXPECT_EQ(compiled.sim.end_time, legacy.sim.end_time);
  }
}

// Satellite check: a break outside any loop must be rejected by validation
// (the interpreters would otherwise hit defensive throws at compile or run
// time).
TEST(LoweringValidation, BreakOutsideLoopRejected) {
  using namespace build;
  Specification spec;
  spec.name = "break_misuse";
  spec.top = leaf("main", block(break_()));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_NE(diags.str().find("break outside of loop"), std::string::npos);
}

}  // namespace
}  // namespace specsyn
