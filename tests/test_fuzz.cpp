// The differential fuzzer's own test suite: generator guarantees, oracle
// sensitivity (planted bugs must be caught), and reducer minimality.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>

#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/reducer.h"
#include "printer/printer.h"
#include "spec/mutate.h"
#include "test_util.h"

namespace specsyn::fuzz {
namespace {

// -- generator ---------------------------------------------------------------

TEST(FuzzGenerator, DeterministicPerSeed) {
  GenOptions a;
  a.seed = 7;
  EXPECT_EQ(print(generate_spec(a)), print(generate_spec(a)));
  GenOptions b;
  b.seed = 8;
  EXPECT_NE(print(generate_spec(a)), print(generate_spec(b)));
}

TEST(FuzzGenerator, SpecsAreValidAndTerminate) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    GenOptions g;
    g.seed = seed;
    const Specification spec = generate_spec(g);
    DiagnosticSink diags;
    ASSERT_TRUE(validate(spec, diags)) << "seed " << seed << ": "
                                       << diags.str();
    const SimResult r = testing::run(spec);
    EXPECT_EQ(r.status, SimResult::Status::Quiescent) << "seed " << seed;
    EXPECT_TRUE(r.root_completed) << "seed " << seed;
  }
}

TEST(FuzzGenerator, SweepsInterestingShapes) {
  bool saw_conc = false, saw_proc = false, saw_loop = false, saw_guard = false;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    GenOptions g;
    g.seed = seed;
    Specification spec = generate_spec(g);
    saw_proc |= !spec.procedures.empty();
    spec.top->for_each([&](const Behavior& b) {
      saw_conc |= b.kind == BehaviorKind::Concurrent;
      for (const Transition& t : b.transitions) saw_guard |= t.guard != nullptr;
    });
    for_each_stmt(spec, [&](Stmt& s) {
      saw_loop |= s.kind == Stmt::Kind::While || s.kind == Stmt::Kind::Loop;
    });
  }
  EXPECT_TRUE(saw_conc);
  EXPECT_TRUE(saw_proc);
  EXPECT_TRUE(saw_loop);
  EXPECT_TRUE(saw_guard);
}

TEST(FuzzGenerator, BudgetScalesSpecSize) {
  GenOptions small;
  small.seed = 3;
  small.stmt_budget = 10;
  GenOptions large = small;
  large.stmt_budget = 160;
  EXPECT_LT(count_lines(print(generate_spec(small))),
            count_lines(print(generate_spec(large))));
}

// -- config sampling ---------------------------------------------------------

TEST(FuzzOracle, ConfigSamplerSweepsTheWholeMatrix) {
  std::set<ImplModel> models;
  std::set<ProtocolStyle> protocols;
  std::set<LeafScheme> schemes;
  std::set<bool> inlines;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const OracleConfig cfg = sample_config(seed);
    models.insert(cfg.model);
    protocols.insert(cfg.protocol);
    schemes.insert(cfg.scheme);
    inlines.insert(cfg.inline_protocols);
  }
  EXPECT_EQ(models.size(), 4u);
  EXPECT_EQ(protocols.size(), 2u);
  EXPECT_EQ(schemes.size(), 2u);
  EXPECT_EQ(inlines.size(), 2u);
}

// -- oracles on a clean tree -------------------------------------------------

TEST(FuzzOracle, CleanSweepOverSeeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    GenOptions g;
    g.seed = seed;
    const Specification spec = generate_spec(g);
    const OracleOutcome out = run_oracles(spec, sample_config(seed));
    EXPECT_TRUE(out.ok()) << "seed " << seed << ":\n" << out.summary();
  }
}

// -- planted bugs ------------------------------------------------------------

// Finds a seed where the requested injection has an applicable site and
// returns its outcome; the oracles must report the bug.
OracleOutcome outcome_with_bug(InjectedBug bug, uint64_t* used_seed) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    GenOptions g;
    g.seed = seed;
    OracleOptions opts;
    opts.inject = bug;
    OracleOutcome out = run_oracles(generate_spec(g), sample_config(seed), opts);
    if (out.injection_applied) {
      if (used_seed != nullptr) *used_seed = seed;
      return out;
    }
  }
  ADD_FAILURE() << "no seed offered an injection site for "
                << to_string(bug);
  return {};
}

TEST(FuzzOracle, DetectsDroppedDoneUpdate) {
  const OracleOutcome out = outcome_with_bug(InjectedBug::DropDoneUpdate, nullptr);
  EXPECT_FALSE(out.ok()) << "a dropped done-assert went unnoticed";
}

TEST(FuzzOracle, DetectsCorruptedDataUpdate) {
  // The first corruption site is not always on an executed path, so scan for
  // a seed where the oracles fire rather than requiring every seed to.
  bool caught = false;
  for (uint64_t seed = 1; seed <= 40 && !caught; ++seed) {
    GenOptions g;
    g.seed = seed;
    OracleOptions opts;
    opts.inject = InjectedBug::CorruptDataUpdate;
    const OracleOutcome out =
        run_oracles(generate_spec(g), sample_config(seed), opts);
    caught = out.injection_applied && !out.ok();
  }
  EXPECT_TRUE(caught) << "no seed caught the corrupted bus data";
}

// -- reducer -----------------------------------------------------------------

TEST(FuzzReducer, RejectsNonFailingInput) {
  GenOptions g;
  g.seed = 2;
  const Specification spec = generate_spec(g);
  EXPECT_THROW(reduce_spec(spec, [](const Specification&) { return false; }),
               SpecError);
}

TEST(FuzzReducer, ShrinksInjectedFailureToMinimalReproducer) {
  // A ~100-line failing spec must come out at <= 15 lines and still fail.
  GenOptions g;
  g.seed = 1;
  g.stmt_budget = 64;
  const Specification spec = generate_spec(g);
  ASSERT_GE(count_lines(print(spec)), 60u);

  const OracleConfig cfg = sample_config(1);
  OracleOptions opts;
  opts.inject = InjectedBug::DropDoneUpdate;
  const OracleOutcome before = run_oracles(spec, cfg, opts);
  ASSERT_TRUE(before.injection_applied);
  ASSERT_FALSE(before.ok());

  const FailPredicate still_fails = [&](const Specification& cand) {
    return !run_oracles(cand, cfg, opts).ok();
  };
  ReduceStats stats;
  const Specification reduced = reduce_spec(spec, still_fails, &stats);

  EXPECT_EQ(stats.initial_lines, count_lines(print(spec)));
  EXPECT_LE(stats.final_lines, 15u);
  EXPECT_LT(stats.final_lines, stats.initial_lines);
  EXPECT_TRUE(still_fails(reduced));
  DiagnosticSink diags;
  EXPECT_TRUE(validate(reduced, diags)) << diags.str();
}

TEST(FuzzReducer, DeterministicOutput) {
  GenOptions g;
  g.seed = 2;
  g.stmt_budget = 48;
  const Specification spec = generate_spec(g);
  const OracleConfig cfg = sample_config(2);
  OracleOptions opts;
  opts.inject = InjectedBug::DropDoneUpdate;
  ASSERT_TRUE(run_oracles(spec, cfg, opts).injection_applied);
  const FailPredicate pred = [&](const Specification& cand) {
    return !run_oracles(cand, cfg, opts).ok();
  };
  EXPECT_EQ(print(reduce_spec(spec, pred)), print(reduce_spec(spec, pred)));
}

// -- driver ------------------------------------------------------------------

TEST(FuzzDriver, CleanRunReportsNoFailures) {
  FuzzOptions opts;
  opts.seeds = 25;
  opts.out_dir = ::testing::TempDir() + "fuzz_clean_out";
  std::ostringstream log;
  const FuzzReport report = run_fuzz(opts, log);
  EXPECT_EQ(report.seeds_run, 25u);
  EXPECT_TRUE(report.ok()) << log.str();
  EXPECT_NE(log.str().find("0 failing"), std::string::npos);
}

TEST(FuzzDriver, InjectedRunWritesReducedReproducers) {
  FuzzOptions opts;
  opts.seeds = 3;
  opts.reduce = true;
  opts.inject = InjectedBug::DropDoneUpdate;
  opts.out_dir = ::testing::TempDir() + "fuzz_inject_out";
  std::filesystem::remove_all(opts.out_dir);
  std::ostringstream log;
  const FuzzReport report = run_fuzz(opts, log);
  ASSERT_FALSE(report.ok()) << "planted bug went undetected:\n" << log.str();
  for (const FuzzFailure& f : report.failures) {
    EXPECT_TRUE(std::filesystem::exists(f.reproducer_path));
    EXPECT_LE(f.spec_lines, 15u) << f.reproducer_path;
    EXPECT_GT(f.reduced_from, f.spec_lines);
  }
}

}  // namespace
}  // namespace specsyn::fuzz
