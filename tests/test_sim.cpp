// Simulator semantics tests: statement execution, signal scheduling, waits,
// concurrency/join, sequential transitions, procedures, determinism.
#include <gtest/gtest.h>

#include "sim/equivalence.h"
#include "sim/simulator.h"
#include "sim/value.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;
using testing::run;

Specification single_leaf(StmtList body, std::vector<VarDecl> vars,
                          std::vector<SignalDecl> sigs = {}) {
  Specification s;
  s.name = "T";
  s.vars = std::move(vars);
  s.signals = std::move(sigs);
  s.top = leaf("Main", std::move(body));
  return s;
}

TEST(Value, BinopSemantics) {
  EXPECT_EQ(apply_binop(BinOp::Add, UINT64_MAX, 1), 0u);
  EXPECT_EQ(apply_binop(BinOp::Div, 7, 0), 0u);
  EXPECT_EQ(apply_binop(BinOp::Mod, 7, 0), 0u);
  EXPECT_EQ(apply_binop(BinOp::Shl, 1, 64), 1u);  // shift mod 64
  EXPECT_EQ(apply_binop(BinOp::Lt, 2, 3), 1u);
  EXPECT_EQ(apply_binop(BinOp::LogicalAnd, 5, 0), 0u);
  EXPECT_EQ(apply_binop(BinOp::LogicalOr, 0, 9), 1u);
  EXPECT_EQ(apply_unop(UnOp::Neg, 1), UINT64_MAX);
  EXPECT_EQ(apply_unop(UnOp::LogicalNot, 0), 1u);
}

TEST(Value, EvalConst) {
  EXPECT_EQ(eval_const(*add(lit(2), mul(lit(3), lit(4)))), 14u);
  EXPECT_THROW((void)eval_const(*ref("x")), SpecError);
}

TEST(Sim, StraightLineAssignments) {
  auto s = single_leaf(block(assign("x", lit(5)),
                             assign("y", add(ref("x"), lit(2)))),
                       {var("x"), var("y")});
  SimResult r = run(s);
  EXPECT_EQ(r.status, SimResult::Status::Quiescent);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("x"), 5u);
  EXPECT_EQ(r.final_vars.at("y"), 7u);
}

TEST(Sim, WritesWrapToDeclaredWidth) {
  auto s = single_leaf(block(assign("x", lit(300))), {var("x", Type::u8())});
  EXPECT_EQ(run(s).final_vars.at("x"), 300u & 0xFF);
}

TEST(Sim, IfElse) {
  auto s = single_leaf(block(assign("x", lit(1)),
                             if_(gt(ref("x"), lit(0)), block(assign("y", lit(10))),
                                 block(assign("y", lit(20)))),
                             if_(gt(ref("x"), lit(5)), block(assign("z", lit(1))),
                                 block(assign("z", lit(2))))),
                       {var("x"), var("y"), var("z")});
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("y"), 10u);
  EXPECT_EQ(r.final_vars.at("z"), 2u);
}

TEST(Sim, WhileLoop) {
  auto s = single_leaf(
      block(while_(lt(ref("i"), lit(5)),
                   block(assign("acc", add(ref("acc"), ref("i"))),
                         assign("i", add(ref("i"), lit(1)))))),
      {var("i"), var("acc")});
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("i"), 5u);
  EXPECT_EQ(r.final_vars.at("acc"), 0u + 1 + 2 + 3 + 4);
}

TEST(Sim, LoopWithBreak) {
  auto s = single_leaf(
      block(loop(block(assign("i", add(ref("i"), lit(1))),
                       if_(ge(ref("i"), lit(3)), block(break_())))),
            assign("after", lit(1))),
      {var("i"), var("after")});
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("i"), 3u);
  EXPECT_EQ(r.final_vars.at("after"), 1u);
}

TEST(Sim, NestedLoopBreakOnlyExitsInnermost) {
  auto s = single_leaf(
      block(while_(lt(ref("o"), lit(3)),
                   block(loop(block(assign("i", add(ref("i"), lit(1))),
                                    break_())),
                         assign("o", add(ref("o"), lit(1)))))),
      {var("o"), var("i")});
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("o"), 3u);
  EXPECT_EQ(r.final_vars.at("i"), 3u);
}

TEST(Sim, SignalAssignNotVisibleWithinIssuingStatement) {
  // `sg <= sg + 1; sg <= sg + 1` — the second schedule still reads the value
  // committed before its own statement ran; updates are never visible to the
  // statement that issues them, but commits at time T precede process steps
  // at T, so the *next* statement (one cycle later) sees the new value.
  auto s = single_leaf(
      block(sassign("sg", add(ref("sg"), lit(1))),  // schedules 1
            assign("x", ref("sg")),                 // commits happened: 1
            assign("y", add(ref("sg"), lit(41)))),  // 42
      {var("x"), var("y")}, {signal("sg", Type::u8())});
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("x"), 1u);
  EXPECT_EQ(r.final_vars.at("y"), 42u);
}

TEST(Sim, WaitBlocksUntilSignal) {
  // Producer delays, then raises go; consumer waits on it.
  Specification s;
  s.name = "PC";
  s.vars = {var("t_consumer"), var("order")};
  s.signals = {signal("go")};
  auto producer = leaf("Producer", block(delay(10), set("go", 1)));
  auto consumer = leaf("Consumer", block(wait_eq("go", 1),
                                         assign("t_consumer", lit(1)),
                                         assign("order", lit(2))));
  s.top = conc("Top", behaviors(std::move(producer), std::move(consumer)));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("t_consumer"), 1u);
  // The consumer must have resumed after t=10.
  EXPECT_GT(r.end_time, 10u);
}

TEST(Sim, WaitAlreadyTruePassesImmediately) {
  auto s = single_leaf(block(wait_eq("go", 1), assign("x", lit(1))),
                       {var("x")}, {signal("go", Type::bit(), 1)});
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("x"), 1u);
}

TEST(Sim, WaitOnNeverRaisedSignalQuiesces) {
  auto s = single_leaf(block(wait_eq("go", 1), assign("x", lit(1))),
                       {var("x")}, {signal("go")});
  SimResult r = run(s);
  EXPECT_EQ(r.status, SimResult::Status::Quiescent);
  EXPECT_FALSE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("x"), 0u);
}

TEST(Sim, FourPhaseHandshake) {
  // The control-refinement pattern of the paper (Fig. 4): a B_CTRL stub and
  // a B_NEW server wrapped in a loop, synchronized by B_start/B_done.
  Specification s;
  s.name = "HS";
  s.vars = {var("count"), var("done_flag")};
  s.signals = {signal("b_start"), signal("b_done")};
  auto ctrl = leaf("Ctrl", block(set("b_start", 1), wait_eq("b_done", 1),
                                 set("b_start", 0), wait_eq("b_done", 0),
                                 // second invocation
                                 set("b_start", 1), wait_eq("b_done", 1),
                                 set("b_start", 0), wait_eq("b_done", 0),
                                 assign("done_flag", lit(1))));
  auto server = leaf("Server",
                     block(loop(block(wait_eq("b_start", 1),
                                      assign("count", add(ref("count"), lit(1))),
                                      set("b_done", 1), wait_eq("b_start", 0),
                                      set("b_done", 0)))));
  s.top = conc("Top", behaviors(std::move(ctrl), std::move(server)));
  SimResult r = run(s);
  EXPECT_EQ(r.status, SimResult::Status::Quiescent);
  EXPECT_EQ(r.final_vars.at("count"), 2u);
  EXPECT_EQ(r.final_vars.at("done_flag"), 1u);
}

TEST(Sim, ConcurrentJoinWaitsForAllChildren) {
  Specification s;
  s.name = "J";
  s.vars = {var("a"), var("b"), var("after")};
  auto fast = leaf("Fast", block(assign("a", lit(1))));
  auto slow = leaf("Slow", block(delay(50), assign("b", lit(1))));
  auto post = leaf("Post", block(assign("after", add(ref("a"), ref("b")))));
  std::vector<Transition> ts;
  ts.push_back(on("Par", "Post"));
  ts.push_back(done("Post"));
  s.top = seq("Top",
              behaviors(conc("Par", behaviors(std::move(fast), std::move(slow))),
                        std::move(post)),
              std::move(ts));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("after"), 2u);  // both children finished first
  EXPECT_GT(r.end_time, 50u);
}

TEST(Sim, SeqTransitionsFollowGuards) {
  SimResult r_b = run(testing::abc_spec(3));  // x=3 > 1 -> B
  EXPECT_EQ(r_b.final_vars.at("r"), 13u);
  SimResult r_c = run(testing::abc_spec(0));  // x=0 < 1 -> C
  EXPECT_EQ(r_c.final_vars.at("r"), 100u);
}

TEST(Sim, SeqFallsThroughWhenNoArcMatches) {
  // x == 1 matches neither guard; control falls through to next child (B).
  SimResult r = run(testing::abc_spec(1));
  EXPECT_EQ(r.final_vars.at("r"), 11u);
}

TEST(Sim, SeqLoopingTransitions) {
  // A sequential composite that iterates: Inc -> Inc while x < 3.
  Specification s;
  s.name = "L";
  s.vars = {var("x")};
  auto inc = leaf("Inc", block(assign("x", add(ref("x"), lit(1)))));
  std::vector<Transition> ts;
  ts.push_back(on("Inc", lt(ref("x"), lit(3)), "Inc"));
  ts.push_back(done("Inc"));
  s.top = seq("Top", behaviors(std::move(inc)), std::move(ts));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("x"), 3u);
  EXPECT_EQ(r.behavior_completions.at("Inc"), 3u);
}

TEST(Sim, ProcedureInOutParams) {
  Specification s;
  s.name = "P";
  s.vars = {var("x", Type::u16(), 7), var("res", Type::u16())};
  Procedure p;
  p.name = "AddFive";
  p.params.push_back(in_param("a", Type::u16()));
  p.params.push_back(out_param("r", Type::u16()));
  p.locals.emplace_back("t", Type::u16());
  p.body = block(assign("t", add(ref("a"), lit(5))), assign("r", ref("t")));
  s.procedures.push_back(std::move(p));
  s.top = leaf("Main", block(call("AddFive", args(ref("x"), ref("res")))));
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("res"), 12u);
  EXPECT_EQ(r.final_vars.at("x"), 7u);  // in-param is by value
}

TEST(Sim, ProcedureLocalsShadowGlobals) {
  Specification s;
  s.name = "Shadow";
  s.vars = {var("g", Type::u16(), 100), var("out_v", Type::u16())};
  Procedure p;
  p.name = "P";
  p.params.push_back(out_param("r", Type::u16()));
  p.locals.emplace_back("g2", Type::u16());
  p.body = block(assign("g2", lit(1)), assign("r", add(ref("g"), ref("g2"))));
  s.procedures.push_back(std::move(p));
  s.top = leaf("Main", block(call("P", args(ref("out_v")))));
  SimResult r = run(s);
  EXPECT_EQ(r.final_vars.at("out_v"), 101u);
  EXPECT_EQ(r.final_vars.at("g"), 100u);
}

TEST(Sim, ObservableWriteTrace) {
  auto s = single_leaf(block(assign("x", lit(1)), assign("x", lit(2)),
                             assign("hidden", lit(9)), assign("x", lit(3))),
                       {var("x", Type::u32(), 0, /*observable=*/true),
                        var("hidden")});
  SimResult r = run(s);
  ASSERT_EQ(r.observable_writes.size(), 3u);
  EXPECT_EQ(r.observable_writes[0].value, 1u);
  EXPECT_EQ(r.observable_writes[1].value, 2u);
  EXPECT_EQ(r.observable_writes[2].value, 3u);
  EXPECT_EQ(r.observable_writes[2].var, "x");
}

TEST(Sim, BehaviorCompletionCounts) {
  SimResult r = run(testing::abc_spec(3));
  EXPECT_EQ(r.behavior_completions.at("A"), 1u);
  EXPECT_EQ(r.behavior_completions.at("B"), 1u);
  EXPECT_EQ(r.behavior_completions.count("C"), 0u);
  EXPECT_EQ(r.behavior_completions.at("Main"), 1u);
}

TEST(Sim, DeterministicAcrossRuns) {
  for (int i = 0; i < 3; ++i) {
    Specification s;
    s.name = "Det";
    s.vars = {var("x", Type::u32(), 0, true)};
    auto w1 = leaf("W1", block(assign("x", add(ref("x"), lit(1))),
                               assign("x", mul(ref("x"), lit(3)))));
    auto w2 = leaf("W2", block(assign("x", add(ref("x"), lit(5)))));
    s.top = conc("Top", behaviors(std::move(w1), std::move(w2)));
    SimResult a = run(s);
    SimResult b = run(s);
    EXPECT_EQ(a.final_vars, b.final_vars);
    EXPECT_EQ(a.observable_writes, b.observable_writes);
    EXPECT_EQ(a.end_time, b.end_time);
  }
}

TEST(Sim, MaxCyclesStopsLivelock) {
  auto s = single_leaf(block(loop(block(assign("x", add(ref("x"), lit(1)))))),
                       {var("x")});
  SimConfig cfg;
  cfg.max_cycles = 1000;
  SimResult r = run(s, cfg);
  EXPECT_EQ(r.status, SimResult::Status::MaxCycles);
  EXPECT_FALSE(r.root_completed);
}

TEST(Sim, DelayZeroStillMakesProgress) {
  auto s = single_leaf(block(delay(0), assign("x", lit(1))), {var("x")});
  SimResult r = run(s);
  EXPECT_TRUE(r.root_completed);
  EXPECT_EQ(r.final_vars.at("x"), 1u);
}

TEST(Sim, RunTwiceThrows) {
  auto s = single_leaf(block(nop()), {});
  Simulator sim(s);
  (void)sim.run();
  EXPECT_THROW(sim.run(), SpecError);
}

TEST(Sim, ObserverSeesEvents) {
  struct Counter : SimObserver {
    int reads = 0, writes = 0, starts = 0, ends = 0, sig_changes = 0;
    void on_var_read(const std::string&, const std::string&, uint64_t) override {
      ++reads;
    }
    void on_var_write(const std::string&, const std::string&, uint64_t,
                      uint64_t) override {
      ++writes;
    }
    void on_behavior_start(const std::string&, uint64_t) override { ++starts; }
    void on_behavior_end(const std::string&, uint64_t) override { ++ends; }
    void on_signal_change(const std::string&, uint64_t, uint64_t) override {
      ++sig_changes;
    }
  };
  auto s = single_leaf(block(assign("x", lit(1)),
                             assign("y", add(ref("x"), ref("x"))),
                             sassign("sg", lit(1))),
                       {var("x"), var("y")}, {signal("sg")});
  Counter c;
  Simulator sim(s);
  sim.add_observer(&c);
  (void)sim.run();
  EXPECT_EQ(c.reads, 2);
  EXPECT_EQ(c.writes, 2);
  EXPECT_EQ(c.starts, 1);
  EXPECT_EQ(c.ends, 1);
  EXPECT_EQ(c.sig_changes, 1);
}

TEST(Sim, AttributionReportsInnermostBehavior) {
  struct Attr : SimObserver {
    std::vector<std::string> writers;
    void on_var_write(const std::string&, const std::string& b, uint64_t,
                      uint64_t) override {
      writers.push_back(b);
    }
  };
  Specification s = testing::abc_spec(3);
  Attr a;
  Simulator sim(s);
  sim.add_observer(&a);
  (void)sim.run();
  ASSERT_EQ(a.writers.size(), 2u);  // A writes x, B writes r
  EXPECT_EQ(a.writers[0], "A");
  EXPECT_EQ(a.writers[1], "B");
}

TEST(Equivalence, IdenticalSpecsAreEquivalent) {
  Specification s = testing::abc_spec(3);
  EquivalenceReport rep = check_equivalence(s, s.clone());
  EXPECT_TRUE(rep.equivalent) << rep.summary();
}

TEST(Equivalence, DetectsValueMismatch) {
  Specification a = testing::abc_spec(3);
  Specification b = testing::abc_spec(4);
  EquivalenceReport rep = check_equivalence(a, b);
  EXPECT_FALSE(rep.equivalent);
  EXPECT_FALSE(rep.summary().empty());
}

TEST(Equivalence, DetectsMissingVariable) {
  Specification a = testing::abc_spec(3);
  Specification b = a.clone();
  // Rename x in the refined spec: equivalence requires original names.
  b.vars[0].name = "x_renamed";
  b.find_behavior("A")->body[0]->target = "x_renamed";
  b.find_behavior("B")->body[0]->expr->args[0]->name = "x_renamed";
  b.find_behavior("C")->body[0]->expr->args[0]->name = "x_renamed";
  b.top->transitions[0].guard->args[0]->name = "x_renamed";
  b.top->transitions[1].guard->args[0]->name = "x_renamed";
  EquivalenceReport rep = check_equivalence(a, b);
  EXPECT_FALSE(rep.equivalent);
}

}  // namespace
}  // namespace specsyn
