// Canonical-printer round-trip guarantees: print -> parse -> print must be a
// fixpoint for every valid specification, and inputs that cannot round-trip
// (reserved-word names, unprintable structures) must be rejected by
// validation with a coded diagnostic — never silently accepted.
#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "printer/printer.h"
#include "refine/refiner.h"
#include "spec/builder.h"
#include "test_util.h"
#include "workloads/answering.h"
#include "workloads/medical.h"
#include "workloads/synthetic.h"

namespace specsyn {
namespace {

using namespace build;

// print(parse(print(s))) == print(s), and the reparse validates.
void expect_roundtrip(const Specification& spec) {
  const std::string text = print(spec);
  Specification reparsed = testing::parse_or_die(text);
  DiagnosticSink diags;
  ASSERT_TRUE(validate(reparsed, diags)) << diags.str();
  EXPECT_EQ(print(reparsed), text);
}

TEST(Roundtrip, MedicalSystem) { expect_roundtrip(make_medical_system()); }

TEST(Roundtrip, AnsweringMachine) { expect_roundtrip(make_answering_machine()); }

TEST(Roundtrip, SyntheticWorkloads) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticOptions opts;
    opts.seed = seed;
    expect_roundtrip(make_synthetic_spec(opts));
  }
}

TEST(Roundtrip, FuzzGeneratedSpecs) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    fuzz::GenOptions g;
    g.seed = seed;
    expect_roundtrip(fuzz::generate_spec(g));
  }
}

TEST(Roundtrip, RefinedMedicalAllModels) {
  const Specification spec = make_medical_system();
  AccessGraph graph = build_access_graph(spec);
  for (int m = 0; m < 4; ++m) {
    Partition part(spec, Allocation::proc_plus_asic());
    size_t i = 0;
    spec.top->for_each([&](const Behavior& b) {
      if (b.is_leaf()) part.assign_behavior(b.name, i++ % 2);
    });
    part.auto_assign_vars(graph);
    RefineConfig cfg;
    cfg.model = static_cast<ImplModel>(m);
    expect_roundtrip(refine(part, graph, cfg).refined);
  }
}

// A programmatically-built declaration whose init exceeds the type range
// must print the wrapped value (what the simulator starts from), otherwise
// the reparse starts from a different constant.
TEST(Roundtrip, UnwrappedInitPrintsWrappedValue) {
  Specification s;
  s.name = "WrapInit";
  s.vars.push_back(var("x", Type::u8(), 300, /*observable=*/true));
  s.top = leaf("L", block(assign("x", add(ref("x"), lit(1)))));
  const std::string text = print(s);
  EXPECT_NE(text.find(":= 44"), std::string::npos) << text;  // 300 mod 256
  expect_roundtrip(s);

  // The reparsed spec must simulate identically to the in-memory one.
  Specification reparsed = testing::parse_or_die(text);
  EXPECT_EQ(testing::run(s).final_vars, testing::run(reparsed).final_vars);
}

// -- unprintable inputs are rejected with coded diagnostics ------------------

std::string validate_errors(const Specification& s) {
  DiagnosticSink diags;
  validate(s, diags);
  return diags.str();
}

TEST(Roundtrip, ReservedBehaviorNameRejected) {
  Specification s;
  s.name = "Bad";
  auto a = leaf("A", block(nop()));
  auto b = leaf("complete", block(nop()));  // prints as a completion arc
  s.top = seq("Top", behaviors(std::move(a), std::move(b)),
              arcs(on("A", nullptr, "complete")));
  EXPECT_NE(validate_errors(s).find("[SV008]"), std::string::npos);
}

TEST(Roundtrip, ReservedVariableNameRejected) {
  Specification s;
  s.name = "Bad";
  s.vars.push_back(var("if", Type::u8()));
  s.top = leaf("L", block(assign("if", lit(1))));
  EXPECT_NE(validate_errors(s).find("[SV008]"), std::string::npos);
}

TEST(Roundtrip, UnguardedSelfArcRejected) {
  Specification s;
  s.name = "Bad";
  auto a = leaf("A", block(nop()));
  s.top = seq("Top", behaviors(std::move(a)),
              arcs(on("A", nullptr, "A")));
  EXPECT_NE(validate_errors(s).find("[SV027]"), std::string::npos);
}

TEST(Roundtrip, GuardedSelfArcIsTheRepeatIdiom) {
  Specification s;
  s.name = "Ok";
  s.vars.push_back(var("x", Type::u8(), 2));
  auto a = leaf("A", block(assign("x", sub(ref("x"), lit(1)))));
  s.top = seq("Top", behaviors(std::move(a)),
              arcs(on("A", gt(ref("x"), lit(0)), "A")));
  DiagnosticSink diags;
  EXPECT_TRUE(validate(s, diags)) << diags.str();
  expect_roundtrip(s);
}

TEST(Roundtrip, ZeroWidthTypeRejectedAtParse) {
  DiagnosticSink diags;
  auto spec = parse_spec(
      "spec Bad;\nvar x : int0;\nbehavior L : leaf { }\n", diags);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(diags.str().find("[SP001]"), std::string::npos) << diags.str();
}

TEST(Roundtrip, EmptyConcurrentBodyRejected) {
  DiagnosticSink pd;
  auto spec = parse_spec(
      "spec Bad;\nbehavior C : conc {\n}\n", pd);
  ASSERT_TRUE(spec.has_value()) << pd.str();
  EXPECT_NE(validate_errors(*spec).find("[SV023]"), std::string::npos);
}

}  // namespace
}  // namespace specsyn
