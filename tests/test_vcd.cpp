// VcdRecorder tests: header wire declarations, $dumpvars initial values,
// monotone timestamps, deduplication and change_count() accounting.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/vcd.h"
#include "spec/builder.h"

namespace specsyn {
namespace {

using namespace build;

Specification toggler() {
  Specification s;
  s.name = "T";
  s.vars = {var("seen", Type::u32(), 0, /*observable=*/true)};
  s.signals = {signal("go"), signal("bus", Type::u8(), 5)};
  auto driver = leaf("Driver", block(sassign("go", lit(1)),
                                     sassign("bus", lit(0x2A)),
                                     wait_eq("go", 1),
                                     sassign("go", lit(0)),
                                     assign("seen", ref("bus"))));
  s.top = std::move(driver);
  return s;
}

struct Recorded {
  VcdRecorder rec;

  explicit Recorded(const Specification& spec, VcdOptions opts = {})
      : rec(spec, std::move(opts)) {
    Simulator sim(spec, SimConfig{});
    sim.add_observer(&rec);
    sim.run();
  }
};

std::string record(const Specification& spec, VcdOptions opts = {}) {
  return Recorded(spec, std::move(opts)).rec.str();
}

TEST(Vcd, HeaderDeclaresEveryWire) {
  const Specification spec = toggler();
  const std::string vcd = record(spec, {});
  EXPECT_NE(vcd.find("$timescale 1 ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module T $end"), std::string::npos);
  // One $var per signal with its width; observables ride along by default.
  EXPECT_NE(vcd.find("$var wire 1 ! go $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 8 \" bus $end"), std::string::npos);
  EXPECT_NE(vcd.find(" seen $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, ObservablesCanBeExcluded) {
  VcdOptions opts;
  opts.include_observables = false;
  const std::string vcd = record(toggler(), opts);
  EXPECT_EQ(vcd.find("seen"), std::string::npos);
  EXPECT_NE(vcd.find(" go $end"), std::string::npos);
}

TEST(Vcd, DumpvarsHoldsInitialValues) {
  const std::string vcd = record(toggler(), {});
  const size_t begin = vcd.find("$dumpvars");
  const size_t end = vcd.find("$end", begin);
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  const std::string dump = vcd.substr(begin, end - begin);
  EXPECT_NE(dump.find("0!"), std::string::npos);  // go initializes low
  // bus initializes to 5 = 00000101 on 8 bits.
  EXPECT_NE(dump.find("b00000101 \""), std::string::npos);
  // The dump section sits at time zero.
  const size_t t0 = vcd.find("#0\n");
  ASSERT_NE(t0, std::string::npos);
  EXPECT_LT(t0, begin);
}

TEST(Vcd, TimestampsAreStrictlyIncreasing) {
  const std::string vcd = record(toggler(), {});
  std::istringstream in(vcd);
  std::vector<uint64_t> times;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line[0] == '#') {
      times.push_back(std::stoull(line.substr(1)));
    }
  }
  ASSERT_GE(times.size(), 2u);  // #0 plus at least one change time
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
}

TEST(Vcd, ChangeCountMatchesRecordedEdges) {
  Recorded r(toggler());
  const std::string vcd = r.rec.str();
  // go 0->1 and 1->0, bus 5->42, seen 0->42: four recorded changes.
  // Initial values in $dumpvars do not count.
  EXPECT_EQ(r.rec.change_count(), 4u);
  // Re-commits of an unchanged value are deduplicated: the body holds
  // exactly one rising edge of `go`.
  size_t rising_go = 0;
  const size_t defs_end = vcd.find("$enddefinitions");
  for (size_t at = vcd.find("\n1!", defs_end); at != std::string::npos;
       at = vcd.find("\n1!", at + 1)) {
    ++rising_go;
  }
  EXPECT_EQ(rising_go, 1u);
}

}  // namespace
}  // namespace specsyn
