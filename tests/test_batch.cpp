// Batch engine tests: thread-pool correctness (ordering, stealing contexts,
// exception discipline), the lowered-program cache, Simulator reuse via
// reset(), parallel equivalence, and the engine-level determinism contract
// (sweep and fuzz output identical for any worker count).
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <set>
#include <sstream>

#include "batch/sweep.h"
#include "batch/thread_pool.h"
#include "estimate/profile.h"
#include "fuzz/fuzzer.h"
#include "graph/access_graph.h"
#include "partition/partition.h"
#include "refine/refiner.h"
#include "sim/equivalence.h"
#include "sim/program_cache.h"
#include "test_util.h"

namespace specsyn::batch {
namespace {

// -- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunBatchOrdersResultsForAnyWorkerCount) {
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    const auto results = run_batch<size_t>(
        pool, 100, [](size_t job, WorkerContext&) { return job * job; });
    ASSERT_EQ(results.size(), 100u);
    for (size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPool, BoundedQueueStillCompletesEveryJob) {
  // Submission blocks at the bound; all jobs must still run exactly once.
  ThreadPool pool(3, /*queue_bound=*/4);
  std::mutex mu;
  std::set<size_t> seen;
  pool.for_each(500, [&](size_t job, WorkerContext&) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(job).second) << "job " << job << " ran twice";
  });
  EXPECT_EQ(seen.size(), 500u);
}

TEST(ThreadPool, WorkersGetDistinctArenas) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<ProgramCache*> caches;
  size_t max_worker = 0;
  pool.for_each(64, [&](size_t, WorkerContext& ctx) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_NE(ctx.programs, nullptr);
    caches.insert(ctx.programs);
    max_worker = std::max(max_worker, ctx.worker);
  });
  EXPECT_LE(caches.size(), 4u);  // one cache per worker, never more
  EXPECT_LT(max_worker, 4u);
}

TEST(ThreadPool, LowestFailingJobIndexWins) {
  ThreadPool pool(4);
  try {
    pool.for_each(50, [](size_t job, WorkerContext&) {
      if (job % 7 == 3) {  // 3, 10, 17, ... all throw; 3 must surface
        throw SpecError("job " + std::to_string(job) + " failed");
      }
    });
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_STREQ(e.what(), "job 3 failed");
  }
}

TEST(ThreadPool, ReusableAfterBatchError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each(8,
                             [](size_t, WorkerContext&) {
                               throw SpecError("boom");
                             }),
               SpecError);
  const auto results =
      run_batch<int>(pool, 10, [](size_t job, WorkerContext&) {
        return static_cast<int>(job) + 1;
      });
  EXPECT_EQ(results[9], 10);
}

TEST(ThreadPool, NestedForEachIsRejectedNotDeadlocked) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each(1,
                             [&](size_t, WorkerContext&) {
                               pool.for_each(1, [](size_t, WorkerContext&) {});
                             }),
               SpecError);
}

TEST(ThreadPool, ZeroJobsIsANoop) {
  ThreadPool pool(2);
  pool.for_each(0, [](size_t, WorkerContext&) { FAIL() << "ran a job"; });
}

// -- program cache -----------------------------------------------------------

TEST(ProgramCache, ContentIdenticalSpecsShareOneProgram) {
  const Specification spec = testing::abc_spec(2);
  const Specification copy = spec.clone();
  ProgramCache cache;
  SimConfig cfg;
  Simulator s1(spec, cfg, &cache);
  Simulator s2(copy, cfg, &cache);  // distinct object, same content
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  const SimResult a = s1.run();
  const SimResult b = s2.run();
  const SimResult plain = testing::run(spec, cfg);
  EXPECT_EQ(a.end_time, plain.end_time);
  EXPECT_EQ(a.final_vars, plain.final_vars);
  EXPECT_EQ(b.final_vars, plain.final_vars);
  EXPECT_EQ(a.behavior_completions, plain.behavior_completions);
}

TEST(ProgramCache, SimConfigChangeMisses) {
  const Specification spec = testing::abc_spec(2);
  ProgramCache cache;
  SimConfig cfg;
  { Simulator s(spec, cfg, &cache); }
  SimConfig slower = cfg;
  slower.stmt_cost = 3;  // cost model is baked into the compiled plan
  { Simulator s(spec, slower, &cache); }
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCache, LruEvictionAtCapacity) {
  ProgramCache cache(/*capacity=*/2);
  SimConfig cfg;
  const Specification s1 = testing::abc_spec(0);
  const Specification s2 = testing::abc_spec(2);
  const Specification s3 = testing::abc_spec(5);
  { Simulator sim(s1, cfg, &cache); }
  { Simulator sim(s2, cfg, &cache); }
  { Simulator sim(s3, cfg, &cache); }  // evicts s1 (least recently used)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  { Simulator sim(s1, cfg, &cache); }  // gone -> miss again
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ProgramCache, CachedProgramOutlivesEvictionWhileSimulatorUsesIt) {
  ProgramCache cache(/*capacity=*/1);
  SimConfig cfg;
  const Specification s1 = testing::abc_spec(2);
  const Specification s2 = testing::abc_spec(5);
  Simulator sim(s1, cfg, &cache);        // holds the cached program alive
  { Simulator other(s2, cfg, &cache); }  // evicts s1's entry from the cache
  EXPECT_EQ(cache.stats().evictions, 1u);
  const SimResult r = sim.run();  // must still run on the evicted program
  EXPECT_EQ(r.final_vars, testing::run(s1, cfg).final_vars);
}

// -- simulator reset ---------------------------------------------------------

TEST(SimulatorReset, RerunIsBitIdentical) {
  const Specification spec = testing::medical_like_spec();
  Simulator sim(spec);
  const SimResult first = sim.run();
  EXPECT_THROW((void)sim.run(), SpecError);  // still once-only without reset
  sim.reset();
  const SimResult second = sim.run();
  EXPECT_EQ(first.end_time, second.end_time);
  EXPECT_EQ(first.steps, second.steps);
  EXPECT_EQ(first.root_completed, second.root_completed);
  EXPECT_EQ(first.final_vars, second.final_vars);
  EXPECT_EQ(first.observable_writes, second.observable_writes);
  EXPECT_EQ(first.behavior_completions, second.behavior_completions);
}

TEST(SimulatorReset, WorksOnLegacyInterpreterToo) {
  const Specification spec = testing::abc_spec(2);
  SimConfig cfg;
  cfg.exec_tier = ExecTier::Tree;
  Simulator sim(spec, cfg);
  const SimResult first = sim.run();
  sim.reset();
  const SimResult second = sim.run();
  EXPECT_EQ(first.final_vars, second.final_vars);
  EXPECT_EQ(first.end_time, second.end_time);
}

// -- parallel equivalence ----------------------------------------------------

TEST(ParallelEquivalence, MatchesSerialReport) {
  const Specification spec = testing::medical_like_spec();
  AccessGraph graph = build_access_graph(spec);
  Partition part(spec, Allocation::proc_plus_asic());
  part.auto_assign_vars(graph);
  RefineConfig rc;
  rc.model = ImplModel::Model2;
  const RefineResult refined = refine(part, graph, rc);

  EquivalenceOptions serial;
  EquivalenceOptions parallel = serial;
  parallel.parallel = true;
  ProgramCache cache;
  parallel.programs = &cache;

  const EquivalenceReport a = check_equivalence(spec, refined.refined, serial);
  const EquivalenceReport b =
      check_equivalence(spec, refined.refined, parallel);
  EXPECT_TRUE(a.equivalent);
  EXPECT_EQ(a.equivalent, b.equivalent);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.original_result.end_time, b.original_result.end_time);
  EXPECT_EQ(a.refined_result.end_time, b.refined_result.end_time);
  EXPECT_EQ(a.refined_result.final_vars, b.refined_result.final_vars);
  EXPECT_GE(cache.stats().misses, 1u);
}

// -- sweep -------------------------------------------------------------------

TEST(Sweep, FullMatrixShape) {
  const auto matrix = full_matrix();
  ASSERT_EQ(matrix.size(), 32u);
  std::set<std::string> labels;
  for (const SweepPoint& p : matrix) labels.insert(p.label());
  EXPECT_EQ(labels.size(), 32u);  // all points distinct
  EXPECT_EQ(model_axis().size(), 4u);
  EXPECT_EQ(model_axis()[2].label(), "model3/hs/loop/inline");
}

TEST(Sweep, JsonIdenticalForAnyWorkerCount) {
  const Specification spec = testing::medical_like_spec();
  AccessGraph graph = build_access_graph(spec);
  Partition part(spec, Allocation::proc_plus_asic());
  part.auto_assign_vars(graph);
  const ProfileResult prof = profile_spec(spec);

  SweepOptions opts;
  opts.verify = true;
  ThreadPool serial(1);
  ThreadPool wide(4);
  const SweepReport a =
      run_sweep(spec, part, graph, prof, full_matrix(), opts, serial);
  const SweepReport b =
      run_sweep(spec, part, graph, prof, full_matrix(), opts, wide);
  EXPECT_EQ(a.json(), b.json());
  EXPECT_EQ(a.table(), b.table());

  ASSERT_EQ(a.rows.size(), 32u);
  for (const SweepRow& r : a.rows) {
    EXPECT_TRUE(r.refine_ok) << r.point.label() << ": " << r.error;
    EXPECT_TRUE(r.equivalent) << r.point.label();
    // Shared-procedure configs can carry pre-existing SA020 findings on
    // single-component partitions; the sweep just reports them. Inlined
    // configs must be verifier-clean.
    if (r.point.config.inline_protocols) {
      EXPECT_EQ(r.sa_errors, 0u) << r.point.label();
    }
  }
}

// -- fuzz --jobs -------------------------------------------------------------

TEST(FuzzJobs, ReportAndLogIdenticalForAnyJobCount) {
  namespace fs = std::filesystem;
  const fs::path out = fs::temp_directory_path() / "specsyn_fuzz_jobs_test";
  fs::remove_all(out);

  fuzz::FuzzOptions opts;
  opts.seeds = 10;
  opts.out_dir = (out / "repro").string();
  opts.inject = fuzz::InjectedBug::CorruptDataUpdate;  // force failures
  opts.reduce = true;

  std::ostringstream log1, log4;
  opts.jobs = 1;
  const fuzz::FuzzReport r1 = fuzz::run_fuzz(opts, log1);
  opts.jobs = 4;
  const fuzz::FuzzReport r4 = fuzz::run_fuzz(opts, log4);

  EXPECT_EQ(log1.str(), log4.str());
  EXPECT_EQ(r1.json(), r4.json());
  EXPECT_EQ(r1.seeds_run, 10u);
  EXPECT_FALSE(r1.failures.empty());  // the planted bug must be caught
  fs::remove_all(out);
}

}  // namespace
}  // namespace specsyn::batch
