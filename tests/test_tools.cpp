// Tests for simulator tooling: VCD waveform export and blocked-process
// (deadlock) diagnostics.
#include <gtest/gtest.h>

#include "refine/refiner.h"
#include "sim/vcd.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

TEST(Vcd, HeaderDeclaresSignalsAndObservables) {
  Specification s;
  s.name = "V";
  s.signals = {signal("go"), signal("dbus", Type::u8())};
  s.vars = {var("x", Type::u16(), 0, /*observable=*/true), var("hidden")};
  s.top = leaf("T", block(set("go", 1), assign("x", lit(3))));
  VcdRecorder vcd(s);
  Simulator sim(s);
  sim.add_observer(&vcd);
  (void)sim.run();
  const std::string out = vcd.str();
  EXPECT_NE(out.find("$timescale 1 ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module V $end"), std::string::npos);
  EXPECT_NE(out.find(" go $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8 "), std::string::npos);   // dbus
  EXPECT_NE(out.find("$var wire 16 "), std::string::npos);  // x
  EXPECT_EQ(out.find("hidden"), std::string::npos);         // not observable
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, RecordsChangesWithTimestamps) {
  Specification s;
  s.name = "V2";
  s.signals = {signal("go")};
  s.top = leaf("T", block(set("go", 1), delay(5), set("go", 0)));
  VcdRecorder vcd(s);
  Simulator sim(s);
  sim.add_observer(&vcd);
  (void)sim.run();
  EXPECT_EQ(vcd.change_count(), 2u);  // 0->1, 1->0
  const std::string out = vcd.str();
  // Change lines: "1<id>" then later "0<id>" after a #time marker.
  size_t t1 = out.find("\n1!");
  size_t t0 = out.find("\n0!", t1 + 1);
  EXPECT_NE(t1, std::string::npos);
  EXPECT_NE(t0, std::string::npos);
  EXPECT_LT(t1, t0);
}

TEST(Vcd, MultiBitValuesInBinary) {
  Specification s;
  s.name = "V3";
  s.signals = {signal("bus", Type::u8())};
  s.top = leaf("T", block(sassign("bus", lit(0xA5))));
  VcdRecorder vcd(s);
  Simulator sim(s);
  sim.add_observer(&vcd);
  (void)sim.run();
  EXPECT_NE(vcd.str().find("b10100101 "), std::string::npos);
}

TEST(Vcd, RefinedSpecProducesBusWaveforms) {
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.assign_var("x", 1);
  part.auto_assign_vars(g);
  RefineConfig cfg;
  cfg.model = ImplModel::Model1;
  RefineResult r = refine(part, g, cfg);
  VcdRecorder vcd(r.refined);
  Simulator sim(r.refined);
  sim.add_observer(&vcd);
  (void)sim.run();
  EXPECT_GT(vcd.change_count(), 20u);  // handshakes toggle a lot
  EXPECT_NE(vcd.str().find("gbus_start"), std::string::npos);
}

TEST(BlockedDiagnostics, ReportsWaitingProcesses) {
  // One process blocks forever on a never-raised signal.
  Specification s;
  s.name = "D";
  s.signals = {signal("never")};
  s.vars = {var("x")};
  auto stuck = leaf("Stuck", block(wait_eq("never", 1), assign("x", lit(1))));
  auto fine = leaf("Fine", block(assign("x", lit(2))));
  s.top = conc("Top", behaviors(std::move(stuck), std::move(fine)));
  SimResult r = testing::run(s);
  EXPECT_EQ(r.status, SimResult::Status::Quiescent);
  EXPECT_FALSE(r.root_completed);
  // Stuck leaf + the root joining on it.
  ASSERT_GE(r.blocked.size(), 2u);
  bool found_wait = false, found_join = false;
  for (const BlockedProcess& b : r.blocked) {
    if (b.behavior == "Stuck" && b.waiting_on == "never == 1") {
      found_wait = true;
    }
    if (b.waiting_on == "<join>") found_join = true;
  }
  EXPECT_TRUE(found_wait);
  EXPECT_TRUE(found_join);
}

TEST(BlockedDiagnostics, CleanCompletionHasNoBlocked) {
  SimResult r = testing::run(testing::abc_spec(3));
  EXPECT_TRUE(r.root_completed);
  EXPECT_TRUE(r.blocked.empty());
}

TEST(BlockedDiagnostics, RefinedSpecBlocksOnlyInServers) {
  // After the main flow completes, every blocked process must be a generated
  // server (memory, arbiter, interface, B_NEW) — none of the original
  // behaviors may be stuck.
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition part(s, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);
  part.auto_assign_vars(g);
  RefineConfig cfg;
  cfg.model = ImplModel::Model4;
  RefineResult r = refine(part, g, cfg);
  SimResult res = testing::run(r.refined);
  EXPECT_EQ(res.status, SimResult::Status::Quiescent);
  std::set<std::string> original_names;
  for (const Behavior* b : s.all_behaviors()) original_names.insert(b->name);
  for (const BlockedProcess& b : res.blocked) {
    EXPECT_EQ(original_names.count(b.behavior), 0u)
        << "original behavior '" << b.behavior << "' deadlocked: waiting on "
        << b.waiting_on;
  }
}

}  // namespace
}  // namespace specsyn
