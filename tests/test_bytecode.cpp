// Unit tests for the bytecode execution tier (sim/bytecode.h) and the
// persistent on-disk program cache (sim/disk_cache.h): superinstruction
// fusion, the register-allocation spill path, image serialization
// round-trips, corruption tolerance, and the L1/L2 cache flow a fleet of
// worker processes relies on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/bytecode.h"
#include "sim/disk_cache.h"
#include "sim/program_cache.h"
#include "sim/simulator.h"
#include "spec/builder.h"
#include "test_util.h"
#include "workloads/medical.h"

namespace specsyn {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const BytecodeProgram> compile_spec(const Specification& spec) {
  validate_or_throw(spec);
  VarTable vars;
  SignalTable signals;
  for (const VarDecl* v : spec.all_vars()) vars.add(v->name, v->type, v->init);
  for (const SignalDecl* s : spec.all_signals()) {
    signals.add(s->name, s->type, s->init);
  }
  return BytecodeProgram::compile(spec, vars, signals);
}

bool has_op(const BytecodeProgram& p, BOp op) {
  for (const BInstr& i : p.code()) {
    if (i.op == op) return true;
  }
  return false;
}

SimResult run_tier(const Specification& spec, ExecTier tier) {
  SimConfig cfg;
  cfg.exec_tier = tier;
  Simulator sim(spec, cfg);
  return sim.run();
}

void expect_same_result(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.root_completed, b.root_completed);
  EXPECT_EQ(a.final_vars, b.final_vars);
  EXPECT_EQ(a.observable_writes, b.observable_writes);
  EXPECT_EQ(a.behavior_completions, b.behavior_completions);
}

/// A spec whose body hits every fusable statement shape.
Specification fusion_spec() {
  using namespace build;
  Specification s;
  s.name = "fusion";
  s.vars.push_back(var("x", Type::u16()));
  s.vars.push_back(var("y", Type::u16()));
  s.signals.push_back(signal("req"));
  s.top = leaf("main", block(assign("x", lit(5)),       // AssignImmVar
                             assign("y", ref("x")),     // AssignLoad
                             set("req", 1),             // SigImm
                             sassign("req", ref("x")),  // SigLoad
                             wait_eq("req", 1),         // WaitSigEq
                             wait(ref("req"))));        // WaitSigNz
  return s;
}

TEST(BytecodeCompile, SuperinstructionFusion) {
  const Specification spec = fusion_spec();
  auto prog = compile_spec(spec);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(has_op(*prog, BOp::AssignImmVar));
  EXPECT_TRUE(has_op(*prog, BOp::AssignLoad));
  EXPECT_TRUE(has_op(*prog, BOp::SigImm));
  EXPECT_TRUE(has_op(*prog, BOp::SigLoad));
  EXPECT_TRUE(has_op(*prog, BOp::WaitSigEq));
  EXPECT_TRUE(has_op(*prog, BOp::WaitSigNz));
  // Every statement fused: no generic store or wait remains.
  EXPECT_FALSE(has_op(*prog, BOp::StVar));
  EXPECT_FALSE(has_op(*prog, BOp::WaitTrue));
  // Fusion must not change observable behaviour.
  expect_same_result(run_tier(spec, ExecTier::Bytecode),
                     run_tier(spec, ExecTier::Tree));
}

TEST(BytecodeCompile, MicroOpImmediateFusion) {
  using namespace build;
  Specification s;
  s.name = "micro_fuse";
  s.signals.push_back(signal("a"));
  s.signals.push_back(signal("b"));
  s.vars.push_back(var("x", Type::u16()));
  s.vars.push_back(var("y", Type::u16()));
  // Compound compare in an assignment: each `sig == k` collapses to one
  // SigBinImm micro-op; the literal rhs of x + 3 folds into BinApplyImm.
  // (Inside a wait the same shape fuses further, into WaitSigExpr.)
  s.top = leaf("main",
               block(set("a", 1), set("b", 2),
                     assign("y", land(eq(ref("a"), lit(1)),
                                      eq(ref("b"), lit(2)))),
                     assign("x", add(add(ref("x"), ref("x")), lit(3)))));
  auto prog = compile_spec(s);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(has_op(*prog, BOp::SigBinImm));
  EXPECT_TRUE(has_op(*prog, BOp::BinApplyImm));
  // Both signal reads fused away; no bare LoadSig/LoadLit feed remains.
  EXPECT_FALSE(has_op(*prog, BOp::LoadSig));
  expect_same_result(run_tier(s, ExecTier::Bytecode),
                     run_tier(s, ExecTier::Tree));
}

TEST(BytecodeCompile, WaitSigExprFusesSignalConditions) {
  using namespace build;
  Specification s;
  s.name = "wait_conj";
  s.signals.push_back(signal("ack"));
  s.signals.push_back(signal("busy"));
  s.signals.push_back(signal("err", Type::u16()));
  // An &&-tree of pure signal-vs-literal compares — including a swapped
  // `lit < sig` leaf — fuses into a single WaitSigExpr dispatch.
  s.top = leaf("main",
               block(set("ack", 1), set("busy", 0), set("err", 3),
                     wait(land(land(eq(ref("ack"), lit(1)),
                                    eq(ref("busy"), lit(0))),
                               lt(lit(2), ref("err"))))));
  auto prog = compile_spec(s);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(has_op(*prog, BOp::WaitSigExpr));
  EXPECT_FALSE(has_op(*prog, BOp::WaitTrue));
  EXPECT_EQ(prog->wait_ops().size(), 5u);  // 3 compare leaves + 2 combiners
  expect_same_result(run_tier(s, ExecTier::Bytecode),
                     run_tier(s, ExecTier::Tree));
}

TEST(BytecodeCompile, WaitSigExprFusesAddressDecodeOrFan) {
  using namespace build;
  Specification s;
  s.name = "wait_decode";
  s.signals.push_back(signal("start"));
  s.signals.push_back(signal("addr", Type::u16()));
  // The refined-slave decode shape: `start == 1 && (addr == a || ... )`.
  s.top = leaf("main",
               block(set("start", 1), set("addr", 2),
                     wait(land(eq(ref("start"), lit(1)),
                               lor(lor(eq(ref("addr"), lit(0)),
                                       eq(ref("addr"), lit(1))),
                                   eq(ref("addr"), lit(2)))))));
  auto prog = compile_spec(s);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(has_op(*prog, BOp::WaitSigExpr));
  EXPECT_FALSE(has_op(*prog, BOp::WaitTrue));
  expect_same_result(run_tier(s, ExecTier::Bytecode),
                     run_tier(s, ExecTier::Tree));
}

TEST(BytecodeCompile, WaitVarCompareStaysGeneric) {
  using namespace build;
  Specification s;
  s.name = "wait_var";
  s.signals.push_back(signal("go"));
  s.vars.push_back(var("x", Type::u16()));
  // A variable leaf poisons the condition: no WaitSigExpr, generic path.
  s.top = leaf("main", block(set("go", 1), assign("x", lit(1)),
                             wait(land(eq(ref("go"), lit(1)),
                                       eq(ref("x"), lit(1))))));
  auto prog = compile_spec(s);
  ASSERT_NE(prog, nullptr);
  EXPECT_FALSE(has_op(*prog, BOp::WaitSigExpr));
  EXPECT_TRUE(has_op(*prog, BOp::WaitTrue));
  expect_same_result(run_tier(s, ExecTier::Bytecode),
                     run_tier(s, ExecTier::Tree));
}

TEST(BytecodeCompile, WaitSigEqFusesBothOperandOrders) {
  using namespace build;
  Specification s;
  s.name = "wait_rev";
  s.signals.push_back(signal("go"));
  s.top = leaf("main", block(set("go", 1),
                             wait(eq(lit(1, Type::bit()), ref("go")))));
  auto prog = compile_spec(s);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(has_op(*prog, BOp::WaitSigEq));
  EXPECT_FALSE(has_op(*prog, BOp::WaitTrue));
}

TEST(BytecodeCompile, DeepExpressionTakesSpillPath) {
  using namespace build;
  // Right-nested adds: postfix evaluation depth is the nesting count + 1,
  // so 70 levels exceed the kMaxRegs = 64 register file.
  ExprPtr e = lit(1);
  for (int i = 0; i < 70; ++i) e = add(lit(1), std::move(e));
  Specification s;
  s.name = "deep";
  s.vars.push_back(var("x", Type::u32(), 0, /*observable=*/true));
  s.top = leaf("main", block(assign("x", std::move(e))));

  auto prog = compile_spec(s);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(has_op(*prog, BOp::EvalSpill));
  EXPECT_GT(prog->max_spill_stack(), kMaxRegs);

  const SimResult bc = run_tier(s, ExecTier::Bytecode);
  expect_same_result(bc, run_tier(s, ExecTier::Tree));
  ASSERT_EQ(bc.final_vars.count("x"), 1u);
  EXPECT_EQ(bc.final_vars.at("x"), 71u);
}

TEST(BytecodeCompile, ShallowExpressionsStayInRegisters) {
  using namespace build;
  Specification s;
  s.name = "shallow";
  s.vars.push_back(var("x", Type::u32()));
  s.vars.push_back(var("y", Type::u32()));
  s.top = leaf("main",
               block(assign("x", add(mul(ref("x"), ref("y")), lit(7)))));
  auto prog = compile_spec(s);
  ASSERT_NE(prog, nullptr);
  // x*y keeps the reg-reg form; the literal +7 folds into its consumer.
  EXPECT_TRUE(has_op(*prog, BOp::BinApply));
  EXPECT_TRUE(has_op(*prog, BOp::BinApplyImm));
  EXPECT_FALSE(has_op(*prog, BOp::EvalSpill));
  EXPECT_EQ(prog->max_spill_stack(), 0u);
}

TEST(BytecodeImage, SerializeRoundTripIsExact) {
  const Specification spec = make_medical_system();
  auto prog = compile_spec(spec);
  ASSERT_NE(prog, nullptr);
  const std::string image = prog->serialize();
  ASSERT_FALSE(image.empty());

  // Deterministic: recompiling identical content serializes identically.
  EXPECT_EQ(compile_spec(spec)->serialize(), image);

  auto loaded = BytecodeProgram::deserialize(
      image, spec, spec.all_vars().size(), spec.all_signals().size());
  ASSERT_NE(loaded, nullptr);
  // Complete: the loaded program re-serializes to the same bytes.
  EXPECT_EQ(loaded->serialize(), image);
  EXPECT_EQ(loaded->behavior_count(), prog->behavior_count());
  EXPECT_EQ(loaded->behavior_names(), prog->behavior_names());
  EXPECT_EQ(loaded->reg_count(), prog->reg_count());
}

TEST(BytecodeImage, TruncatedImagesAreRejected) {
  const Specification spec = make_medical_system();
  const std::string image = compile_spec(spec)->serialize();
  const size_t n = image.size();
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, n / 4, n / 2, n - 1}) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    EXPECT_EQ(BytecodeProgram::deserialize(
                  std::string_view(image).substr(0, len), spec,
                  spec.all_vars().size(), spec.all_signals().size()),
              nullptr);
  }
  // Trailing garbage is also an inconsistency, not silently ignored.
  EXPECT_EQ(BytecodeProgram::deserialize(image + "x", spec,
                                         spec.all_vars().size(),
                                         spec.all_signals().size()),
            nullptr);
}

TEST(BytecodeImage, MismatchedSpecIsRejected) {
  const Specification spec = make_medical_system();
  const std::string image = compile_spec(spec)->serialize();
  const Specification other = testing::abc_spec(2);
  EXPECT_EQ(BytecodeProgram::deserialize(image, other,
                                         other.all_vars().size(),
                                         other.all_signals().size()),
            nullptr);
}

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("specsyn_disk_cache_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Flips one byte near the end of every cache file (payload region, so
  /// the stored checksum no longer matches).
  void corrupt_all_files() const {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      std::fstream f(entry.path(),
                     std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.is_open());
      f.seekg(0, std::ios::end);
      const auto size = static_cast<std::streamoff>(f.tellg());
      ASSERT_GT(size, 0);
      f.seekg(size - 1);
      char c = 0;
      f.read(&c, 1);
      c = static_cast<char>(c ^ 0x5a);
      f.seekp(size - 1);
      f.write(&c, 1);
    }
  }

  void truncate_all_files() const {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      std::error_code ec;
      fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2, ec);
      ASSERT_FALSE(ec);
    }
  }

  fs::path dir_;
};

TEST_F(DiskCacheTest, StoreLoadRoundTrip) {
  DiskProgramCache disk(dir_.string());
  const std::string key = "some cache key\x01with binary bits";
  const std::string payload = "payload bytes \0 included";
  EXPECT_EQ(disk.load(key), "");  // cold
  disk.store(key, payload);
  EXPECT_EQ(disk.load(key), payload);
  EXPECT_EQ(disk.load("different key"), "");
  const DiskProgramCache::Stats s = disk.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.stores, 1u);
}

TEST_F(DiskCacheTest, CorruptedFileIsAMiss) {
  DiskProgramCache disk(dir_.string());
  disk.store("key", "a payload long enough to corrupt meaningfully");
  corrupt_all_files();
  EXPECT_EQ(disk.load("key"), "");
}

TEST_F(DiskCacheTest, TruncatedFileIsAMiss) {
  DiskProgramCache disk(dir_.string());
  disk.store("key", "a payload long enough to truncate meaningfully");
  truncate_all_files();
  EXPECT_EQ(disk.load("key"), "");
}

TEST_F(DiskCacheTest, SecondProcessLoadsInsteadOfCompiling) {
  const Specification spec = make_medical_system();
  SimConfig cfg;
  cfg.exec_tier = ExecTier::Bytecode;
  DiskProgramCache disk(dir_.string());

  // "Process 1": cold disk — compiles and publishes the image.
  ProgramCache first;
  first.set_disk(&disk);
  const SimResult r1 = Simulator(spec, cfg, &first).run();
  ProgramCache::Stats s1 = first.stats();
  EXPECT_EQ(s1.disk_hits, 0u);
  EXPECT_EQ(s1.disk_misses, 1u);
  EXPECT_EQ(s1.disk_stores, 1u);

  // "Process 2": fresh L1, same disk — must load, not recompile.
  ProgramCache second;
  second.set_disk(&disk);
  const SimResult r2 = Simulator(spec, cfg, &second).run();
  ProgramCache::Stats s2 = second.stats();
  EXPECT_EQ(s2.disk_hits, 1u);
  EXPECT_EQ(s2.disk_misses, 0u);
  EXPECT_EQ(s2.disk_stores, 0u);
  expect_same_result(r2, r1);
}

TEST_F(DiskCacheTest, CorruptedImageFallsBackToCompile) {
  const Specification spec = make_medical_system();
  SimConfig cfg;
  cfg.exec_tier = ExecTier::Bytecode;
  DiskProgramCache disk(dir_.string());
  ProgramCache first;
  first.set_disk(&disk);
  const SimResult r1 = Simulator(spec, cfg, &first).run();
  corrupt_all_files();

  ProgramCache second;
  second.set_disk(&disk);
  const SimResult r2 = Simulator(spec, cfg, &second).run();
  ProgramCache::Stats s2 = second.stats();
  EXPECT_EQ(s2.disk_hits, 0u);  // corruption degraded to a clean miss
  EXPECT_EQ(s2.disk_misses, 1u);
  EXPECT_EQ(s2.disk_stores, 1u);  // and the repaired image was re-published
  expect_same_result(r2, r1);

  // The re-published image is valid again for a third process.
  ProgramCache third;
  third.set_disk(&disk);
  const SimResult r3 = Simulator(spec, cfg, &third).run();
  EXPECT_EQ(third.stats().disk_hits, 1u);
  expect_same_result(r3, r1);
}

TEST(ProgramCacheTiers, TiersGetSeparateEntries) {
  const Specification spec = testing::abc_spec(2);
  ProgramCache cache;
  SimConfig lowered;
  lowered.exec_tier = ExecTier::Lowered;
  SimConfig bytecode;
  bytecode.exec_tier = ExecTier::Bytecode;

  auto a = cache.get(spec, lowered);
  auto b = cache.get(spec, bytecode);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_NE(a->program, nullptr);
  EXPECT_EQ(a->bytecode, nullptr);
  EXPECT_EQ(b->program, nullptr);
  EXPECT_NE(b->bytecode, nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);

  auto a2 = cache.get(spec, lowered);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ProgramCacheTiers, CachedBytecodeRunsIdenticalToFresh) {
  const Specification spec = make_medical_system();
  SimConfig cfg;
  cfg.exec_tier = ExecTier::Bytecode;
  ProgramCache cache;
  const SimResult cached1 = Simulator(spec, cfg, &cache).run();
  const SimResult cached2 = Simulator(spec, cfg, &cache).run();  // L1 hit
  const SimResult fresh = Simulator(spec, cfg).run();
  EXPECT_EQ(cache.stats().hits, 1u);
  expect_same_result(cached1, fresh);
  expect_same_result(cached2, fresh);
}

}  // namespace
}  // namespace specsyn
