// Property-based tests: seeded random specifications x random partitions x
// all four implementation models must preserve functional equivalence.
// This is the library's strongest correctness statement — refinement is a
// semantics-preserving source-to-source transformation on *any* valid input,
// not just the curated examples.
#include <gtest/gtest.h>

#include "printer/printer.h"
#include "parser/parser.h"
#include "refine/refiner.h"
#include "sim/equivalence.h"
#include "workloads/synthetic.h"
#include "test_util.h"

namespace specsyn {
namespace {

struct PropertyCase {
  uint64_t seed;
  ImplModel model;
  ProtocolStyle protocol;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_" +
         to_string(info.param.model) + "_" +
         (info.param.protocol == ProtocolStyle::FullHandshake ? "hs" : "bs");
}

class RefineProperty : public ::testing::TestWithParam<PropertyCase> {};

class RefinePropertyP3 : public ::testing::TestWithParam<PropertyCase> {};

// Three-component allocation: exercises Model3's dedicated-bus mesh and
// Model4's multi-interface routing harder than the two-chip setup.
TEST_P(RefinePropertyP3, EquivalenceHolds) {
  const PropertyCase& pc = GetParam();
  SyntheticOptions opts;
  opts.seed = pc.seed;
  opts.leaf_behaviors = 6 + pc.seed % 4;
  opts.variables = 9 + pc.seed % 4;
  opts.conc_percent = (pc.seed % 2 == 0) ? 30 : 0;
  Specification spec = make_synthetic_spec(opts);
  AccessGraph graph = build_access_graph(spec);
  Partition part(spec, Allocation::asics(3));
  std::vector<std::string> leaves;
  spec.top->for_each([&](const Behavior& b) {
    if (b.is_leaf()) leaves.push_back(b.name);
  });
  for (size_t i = 0; i < leaves.size(); ++i) {
    part.assign_behavior(leaves[i], (i + pc.seed) % 3);
  }
  part.auto_assign_vars(graph);
  RefineConfig cfg;
  cfg.model = pc.model;
  cfg.protocol = pc.protocol;
  RefineResult r = refine(part, graph, cfg);
  EquivalenceOptions eq_opts;
  eq_opts.compare_write_traces = pc.protocol == ProtocolStyle::FullHandshake;
  EquivalenceReport rep = check_equivalence(spec, r.refined, eq_opts);
  EXPECT_TRUE(rep.equivalent)
      << "p3 seed=" << pc.seed << " model=" << to_string(pc.model) << "\n"
      << rep.summary();
}

std::vector<PropertyCase> make_p3_cases() {
  std::vector<PropertyCase> cases;
  const ImplModel models[] = {ImplModel::Model1, ImplModel::Model2,
                              ImplModel::Model3, ImplModel::Model4};
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (ImplModel m : models) {
      cases.push_back({seed, m, ProtocolStyle::FullHandshake});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SweepP3, RefinePropertyP3,
                         ::testing::ValuesIn(make_p3_cases()), case_name);

TEST_P(RefineProperty, EquivalenceHolds) {
  const PropertyCase& pc = GetParam();
  SyntheticOptions opts;
  opts.seed = pc.seed;
  opts.leaf_behaviors = 5 + pc.seed % 5;
  opts.variables = 6 + pc.seed % 6;
  opts.conc_percent = (pc.seed % 3 == 0) ? 35 : 0;
  Specification spec = make_synthetic_spec(opts);
  testing::expect_valid(spec);

  AccessGraph graph = build_access_graph(spec);
  Partition part(spec, Allocation::proc_plus_asic());
  // Deterministic pseudo-random leaf assignment derived from the seed.
  uint64_t h = pc.seed * 2654435761u + 17;
  size_t assigned_to_1 = 0;
  std::vector<std::string> leaves;
  spec.top->for_each([&](const Behavior& b) {
    if (b.is_leaf()) leaves.push_back(b.name);
  });
  for (const std::string& name : leaves) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((h >> 33) & 1) {
      part.assign_behavior(name, 1);
      ++assigned_to_1;
    }
  }
  if (assigned_to_1 == 0) part.assign_behavior(leaves.front(), 1);
  if (assigned_to_1 == leaves.size()) part.assign_behavior(leaves.front(), 0);
  part.auto_assign_vars(graph);

  RefineConfig cfg;
  cfg.model = pc.model;
  cfg.protocol = pc.protocol;
  cfg.leaf_scheme =
      pc.seed % 2 == 0 ? LeafScheme::LoopLeaf : LeafScheme::WrapperSeq;
  cfg.inline_protocols = pc.seed % 3 != 1;  // sweep both emission modes
  RefineResult r = refine(part, graph, cfg);

  EquivalenceOptions eq_opts;
  // Byte-serial commits per beat; write traces are only comparable for the
  // full-handshake protocol.
  eq_opts.compare_write_traces = pc.protocol == ProtocolStyle::FullHandshake;
  EquivalenceReport rep = check_equivalence(spec, r.refined, eq_opts);
  EXPECT_TRUE(rep.equivalent)
      << "seed=" << pc.seed << " model=" << to_string(pc.model) << "\n"
      << rep.summary();
}

TEST_P(RefineProperty, RefinedSpecRoundTripsThroughParser) {
  const PropertyCase& pc = GetParam();
  if (pc.protocol != ProtocolStyle::FullHandshake) GTEST_SKIP();
  SyntheticOptions opts;
  opts.seed = pc.seed;
  Specification spec = make_synthetic_spec(opts);
  AccessGraph graph = build_access_graph(spec);
  Partition part(spec, Allocation::proc_plus_asic());
  std::vector<std::string> leaves;
  spec.top->for_each([&](const Behavior& b) {
    if (b.is_leaf()) leaves.push_back(b.name);
  });
  part.assign_behavior(leaves.back(), 1);
  part.auto_assign_vars(graph);
  RefineConfig cfg;
  cfg.model = pc.model;
  RefineResult r = refine(part, graph, cfg);

  const std::string text = print(r.refined);
  DiagnosticSink diags;
  auto reparsed = parse_spec(text, diags);
  ASSERT_TRUE(reparsed.has_value()) << diags.str();
  EXPECT_EQ(print(*reparsed), text);
  DiagnosticSink vd;
  EXPECT_TRUE(validate(*reparsed, vd)) << vd.str();
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  const ImplModel models[] = {ImplModel::Model1, ImplModel::Model2,
                              ImplModel::Model3, ImplModel::Model4};
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    for (ImplModel m : models) {
      cases.push_back({seed, m, ProtocolStyle::FullHandshake});
    }
  }
  // A lighter byte-serial sweep.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (ImplModel m : models) {
      cases.push_back({seed, m, ProtocolStyle::ByteSerial});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RefineProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

TEST(SyntheticGenerator, DeterministicPerSeed) {
  SyntheticOptions opts;
  opts.seed = 42;
  Specification a = make_synthetic_spec(opts);
  Specification b = make_synthetic_spec(opts);
  EXPECT_EQ(print(a), print(b));
  opts.seed = 43;
  EXPECT_NE(print(make_synthetic_spec(opts)), print(a));
}

TEST(SyntheticGenerator, SpecsAreValidAndTerminate) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SyntheticOptions opts;
    opts.seed = seed;
    opts.conc_percent = 30;
    Specification s = make_synthetic_spec(opts);
    DiagnosticSink diags;
    ASSERT_TRUE(validate(s, diags)) << "seed " << seed << "\n" << diags.str();
    SimResult r = testing::run(s);
    EXPECT_EQ(r.status, SimResult::Status::Quiescent) << "seed " << seed;
    EXPECT_TRUE(r.root_completed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace specsyn
