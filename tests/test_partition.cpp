// Unit tests for allocation, partition assignment, variable classification
// and the ratio-driven partitioner.
#include <gtest/gtest.h>

#include "partition/partitioner.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

TEST(Allocation, Factories) {
  Allocation a = Allocation::proc_plus_asic();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.components[0].kind, ComponentKind::Processor);
  EXPECT_EQ(a.components[1].kind, ComponentKind::Asic);
  EXPECT_EQ(a.find("ASIC"), 1u);
  EXPECT_EQ(a.find("nope"), SIZE_MAX);

  Allocation b = Allocation::asics(3);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.components[2].name, "ASIC3");
}

TEST(Partition, BehaviorInheritance) {
  Specification s = testing::abc_spec(3);
  Partition p(s, Allocation::proc_plus_asic());
  // Unpinned: everything on component 0.
  EXPECT_EQ(p.component_of_behavior("Main"), 0u);
  EXPECT_EQ(p.component_of_behavior("B"), 0u);
  p.assign_behavior("B", 1);
  EXPECT_EQ(p.component_of_behavior("B"), 1u);
  EXPECT_EQ(p.component_of_behavior("A"), 0u);
  EXPECT_TRUE(p.is_cut_behavior("B"));
  EXPECT_FALSE(p.is_cut_behavior("A"));
  EXPECT_FALSE(p.is_cut_behavior("Main"));
  auto cuts = p.cut_behaviors();
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], "B");
}

TEST(Partition, SubtreeInheritsPin) {
  Specification s;
  s.name = "T";
  s.vars = {var("x")};
  auto inner = seq("Inner", behaviors(leaf("L1", block(assign("x", lit(1)))),
                                      leaf("L2", block(nop()))));
  s.top = seq("Top", behaviors(std::move(inner), leaf("L3", block(nop()))));
  Partition p(s, Allocation::proc_plus_asic());
  p.assign_behavior("Inner", 1);
  EXPECT_EQ(p.component_of_behavior("L1"), 1u);
  EXPECT_EQ(p.component_of_behavior("L2"), 1u);
  EXPECT_EQ(p.component_of_behavior("L3"), 0u);
  // Only the subtree root is a cut.
  auto cuts = p.cut_behaviors();
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], "Inner");
}

TEST(Partition, UnknownNamesThrow) {
  Specification s = testing::abc_spec(3);
  Partition p(s, Allocation::proc_plus_asic());
  EXPECT_THROW(p.assign_behavior("ghost", 0), SpecError);
  EXPECT_THROW(p.assign_behavior("B", 5), SpecError);
  EXPECT_THROW(p.assign_var("ghost", 0), SpecError);
  EXPECT_THROW((void)p.component_of_var("ghost"), SpecError);
}

TEST(Partition, VarPlacementAndClassification) {
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  Partition p(s, Allocation::proc_plus_asic());
  p.assign_behavior("B", 1);
  p.auto_assign_vars(g);
  // x is accessed by Main/A (comp 0) and B (comp 1): global wherever placed.
  auto placements = p.classify_vars(g);
  const VarPlacement* x = nullptr;
  const VarPlacement* r = nullptr;
  for (const auto& vp : placements) {
    if (vp.var == "x") x = &vp;
    if (vp.var == "r") r = &vp;
  }
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->is_global);
  EXPECT_EQ(x->accessor_components.size(), 2u);
  // r is written by B (comp 1) and C (comp 0): also global.
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->is_global);
}

TEST(Partition, LocalClassification) {
  Specification s;
  s.name = "T";
  s.vars = {var("a"), var("b")};
  s.top = seq("Top", behaviors(leaf("L1", block(assign("a", lit(1)))),
                               leaf("L2", block(assign("b", lit(2))))));
  AccessGraph g = build_access_graph(s);
  Partition p(s, Allocation::proc_plus_asic());
  p.assign_behavior("L2", 1);
  p.auto_assign_vars(g);
  EXPECT_EQ(p.component_of_var("a"), 0u);
  EXPECT_EQ(p.component_of_var("b"), 1u);
  auto [local, global] = p.local_global_counts(g);
  EXPECT_EQ(local, 2u);
  EXPECT_EQ(global, 0u);
}

TEST(Partition, MisplacedVarBecomesGlobal) {
  Specification s;
  s.name = "T";
  s.vars = {var("a")};
  s.top = seq("Top", behaviors(leaf("L1", block(assign("a", lit(1)))),
                               leaf("L2", block(nop()))));
  AccessGraph g = build_access_graph(s);
  Partition p(s, Allocation::proc_plus_asic());
  p.assign_var("a", 1);  // stored away from its only accessor
  auto placements = p.classify_vars(g);
  EXPECT_TRUE(placements[0].is_global);
}

TEST(Partition, CheckReportsProblems) {
  Specification s = testing::abc_spec(3);
  Partition p(s, Allocation::proc_plus_asic());
  DiagnosticSink diags;
  EXPECT_TRUE(p.check(diags));
  // component 1 hosts nothing -> warning but not error
  EXPECT_NE(diags.str().find("hosts no behaviors"), std::string::npos);
}

TEST(Partitioner, GoalsProduceRequestedRatios) {
  Specification s = testing::medical_like_spec();
  AccessGraph g = build_access_graph(s);

  PartitionerOptions balanced;
  balanced.goal = RatioGoal::Balanced;
  auto r1 = make_ratio_partition(s, g, Allocation::proc_plus_asic(), balanced);

  PartitionerOptions more_local;
  more_local.goal = RatioGoal::MoreLocal;
  auto r2 = make_ratio_partition(s, g, Allocation::proc_plus_asic(), more_local);

  PartitionerOptions more_global;
  more_global.goal = RatioGoal::MoreGlobal;
  auto r3 =
      make_ratio_partition(s, g, Allocation::proc_plus_asic(), more_global);

  EXPECT_GT(r2.local_vars, r2.global_vars);
  EXPECT_GT(r2.global_vars, 0u);
  EXPECT_GT(r3.global_vars, r3.local_vars);
  EXPECT_LE(static_cast<size_t>(
                std::abs(static_cast<long>(r1.local_vars) -
                         static_cast<long>(r1.global_vars))),
            static_cast<size_t>(
                std::abs(static_cast<long>(r2.local_vars) -
                         static_cast<long>(r2.global_vars))));
}

TEST(Partitioner, DeterministicAcrossRuns) {
  Specification s = testing::medical_like_spec();
  AccessGraph g = build_access_graph(s);
  PartitionerOptions opts;
  opts.goal = RatioGoal::Balanced;
  auto a = make_ratio_partition(s, g, Allocation::proc_plus_asic(), opts);
  auto b = make_ratio_partition(s, g, Allocation::proc_plus_asic(), opts);
  EXPECT_EQ(a.local_vars, b.local_vars);
  EXPECT_EQ(a.global_vars, b.global_vars);
  for (const char* bn : {"L0", "L1", "L2", "L3"}) {
    if (s.find_behavior(bn)) {
      EXPECT_EQ(a.partition.component_of_behavior(bn),
                b.partition.component_of_behavior(bn));
    }
  }
}

TEST(Partitioner, GreedyPathForManyComponents) {
  Specification s = testing::medical_like_spec();
  AccessGraph g = build_access_graph(s);
  PartitionerOptions opts;
  opts.goal = RatioGoal::Balanced;
  auto r = make_ratio_partition(s, g, Allocation::asics(3), opts);
  DiagnosticSink diags;
  EXPECT_TRUE(r.partition.check(diags)) << diags.str();
}

TEST(Partitioner, RejectsDegenerateInputs) {
  Specification s = testing::abc_spec(3);
  AccessGraph g = build_access_graph(s);
  EXPECT_THROW(
      make_ratio_partition(s, g, Allocation::asics(1), PartitionerOptions{}),
      SpecError);
  Specification tiny;
  tiny.name = "T";
  tiny.top = build::leaf("Solo", build::block(build::nop()));
  AccessGraph tg = build_access_graph(tiny);
  EXPECT_THROW(make_ratio_partition(tiny, tg, Allocation::proc_plus_asic(),
                                    PartitionerOptions{}),
               SpecError);
}

}  // namespace
}  // namespace specsyn
