// Unit tests for the spec IR: construction, cloning, lookup, validation.
#include <gtest/gtest.h>

#include "printer/printer.h"
#include "spec/builder.h"
#include "test_util.h"

namespace specsyn {
namespace {

using namespace build;

TEST(Type, WrapAndMask) {
  EXPECT_EQ(Type::bit().mask(), 1u);
  EXPECT_EQ(Type::u8().mask(), 0xFFu);
  EXPECT_EQ(Type::u64().mask(), ~uint64_t{0});
  EXPECT_EQ(Type::u8().wrap(0x1FF), 0xFFu);
  EXPECT_EQ(Type::of_width(3).wrap(9), 1u);
  EXPECT_TRUE(Type::of_width(64).valid());
  EXPECT_FALSE(Type::of_width(0).valid());
  EXPECT_FALSE(Type::of_width(65).valid());
}

TEST(Type, Spelling) {
  EXPECT_EQ(Type::bit().str(), "bit");
  EXPECT_EQ(Type::u16().str(), "int16");
  EXPECT_EQ(Type::of_width(17).str(), "int17");
}

TEST(Expr, FactoriesAndClone) {
  ExprPtr e = add(ref("x"), mul(lit(3), ref("y")));
  ASSERT_EQ(e->kind, Expr::Kind::Binary);
  EXPECT_EQ(e->bin_op, BinOp::Add);
  ExprPtr c = e->clone();
  EXPECT_EQ(print(*c), print(*e));
  // Deep: mutating the clone must not touch the original.
  c->args[0]->name = "z";
  EXPECT_NE(print(*c), print(*e));
}

TEST(Expr, CollectNamesAndReferences) {
  ExprPtr e = land(gt(ref("a"), lit(1)), eq(ref("b"), ref("a")));
  std::vector<std::string> names;
  e->collect_names(names);
  EXPECT_EQ(names.size(), 3u);
  EXPECT_TRUE(e->references("a"));
  EXPECT_TRUE(e->references("b"));
  EXPECT_FALSE(e->references("c"));
}

TEST(Stmt, CloneIsDeep) {
  StmtPtr s = if_(gt(ref("x"), lit(0)),
                  block(assign("y", lit(1))),
                  block(assign("y", lit(2))));
  StmtPtr c = s->clone();
  EXPECT_EQ(print(*c), print(*s));
  c->then_block[0]->target = "z";
  EXPECT_NE(print(*c), print(*s));
}

TEST(Stmt, NodeCount) {
  StmtPtr s = while_(lt(ref("i"), lit(4)),
                     block(assign("i", add(ref("i"), lit(1))), nop()));
  EXPECT_EQ(s->node_count(), 3u);
}

TEST(Behavior, HierarchyHelpers) {
  auto b = seq("Top",
               behaviors(leaf("A", block(nop())), leaf("B", block(nop()))),
               arcs(on("A", "B")));
  EXPECT_NE(b->find_child("A"), nullptr);
  EXPECT_EQ(b->find_child("Z"), nullptr);
  EXPECT_EQ(b->child_index("B"), 1u);
  EXPECT_EQ(b->child_index("Z"), 2u);
  EXPECT_EQ(b->all_behaviors().size(), 3u);
  EXPECT_EQ(b->stmt_count(), 2u);
}

TEST(Behavior, CloneIsDeep) {
  auto b = conc("Top", behaviors(leaf("A", block(assign("x", lit(1)))),
                                 leaf("B", block(nop()))));
  auto c = b->clone();
  c->children[0]->name = "A2";
  EXPECT_EQ(b->children[0]->name, "A");
  EXPECT_EQ(print(*c->children[0]->body[0]), print(*b->children[0]->body[0]));
}

TEST(Specification, LookupAcrossHierarchy) {
  Specification s = testing::abc_spec(3);
  EXPECT_NE(s.find_behavior("B"), nullptr);
  EXPECT_EQ(s.find_behavior("nope"), nullptr);
  ASSERT_NE(s.parent_of("B"), nullptr);
  EXPECT_EQ(s.parent_of("B")->name, "Main");
  EXPECT_EQ(s.parent_of("Main"), nullptr);
  const Behavior* owner = reinterpret_cast<const Behavior*>(1);
  const VarDecl* x = s.find_var("x", &owner);
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(owner, nullptr);  // declared at spec level
  EXPECT_EQ(s.all_vars().size(), 2u);
  EXPECT_EQ(s.all_behaviors().size(), 4u);
}

TEST(Specification, CloneIsDeep) {
  Specification s = testing::abc_spec(3);
  Specification c = s.clone();
  c.find_behavior("A")->name = "A2";
  EXPECT_NE(s.find_behavior("A"), nullptr);
  EXPECT_EQ(print(c.clone()), print(c));
}

TEST(Specification, FullySequentialDetection) {
  EXPECT_TRUE(testing::abc_spec(3).is_fully_sequential());
  Specification s;
  s.name = "C";
  s.top = conc("T", behaviors(leaf("A", block(nop())), leaf("B", block(nop()))));
  EXPECT_FALSE(s.is_fully_sequential());
}

// ---------------------------------------------------------------------------
// validate()
// ---------------------------------------------------------------------------

TEST(Validate, AcceptsWellFormedSpec) {
  DiagnosticSink diags;
  EXPECT_TRUE(validate(testing::abc_spec(0), diags)) << diags.str();
}

TEST(Validate, RejectsMissingTop) {
  Specification s;
  s.name = "Empty";
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
}

TEST(Validate, RejectsDuplicateBehaviorNames) {
  Specification s;
  s.name = "Dup";
  s.top = seq("T", build::behaviors(leaf("A", block(nop())),
                                    leaf("A", block(nop()))));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
  EXPECT_NE(diags.str().find("duplicate behavior name"), std::string::npos);
}

TEST(Validate, RejectsDuplicateDataNamesAcrossKinds) {
  Specification s;
  s.name = "Dup";
  s.vars.push_back(var("x"));
  s.signals.push_back(signal("x"));
  s.top = leaf("T", block(nop()));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
}

TEST(Validate, RejectsUndeclaredReference) {
  Specification s;
  s.name = "S";
  s.top = leaf("T", block(assign("ghost", lit(1))));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
}

TEST(Validate, RejectsAssignKindMismatch) {
  Specification s;
  s.name = "S";
  s.vars.push_back(var("v"));
  s.signals.push_back(signal("sg"));
  s.top = leaf("T", block(assign("sg", lit(1)), sassign("v", lit(1))));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
  EXPECT_EQ(diags.error_count(), 2u);
}

TEST(Validate, RejectsOutOfScopeReference) {
  // Variable declared in sibling A is not visible in B.
  Specification s;
  s.name = "S";
  auto a = leaf("A", block(nop()));
  a->vars.push_back(var("hidden"));
  auto b = leaf("B", block(assign("hidden", lit(1))));
  s.top = seq("T", build::behaviors(std::move(a), std::move(b)));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
}

TEST(Validate, AcceptsParentScopeReference) {
  Specification s;
  s.name = "S";
  auto parent = seq("P", build::behaviors(leaf("A", block(assign("x", lit(1))))));
  parent->vars.push_back(var("x"));
  s.top = std::move(parent);
  DiagnosticSink diags;
  EXPECT_TRUE(validate(s, diags)) << diags.str();
}

TEST(Validate, RejectsBadTransitions) {
  Specification s;
  s.name = "S";
  s.top = seq("T", build::behaviors(leaf("A", block(nop()))),
              arcs(on("A", "Ghost"), on("Ghost", "A")));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
  EXPECT_EQ(diags.error_count(), 2u);
}

TEST(Validate, RejectsLeafWithChildrenShape) {
  Specification s;
  s.name = "S";
  auto bad = std::make_unique<Behavior>();
  bad->name = "L";
  bad->kind = BehaviorKind::Leaf;
  bad->children.push_back(leaf("C", block(nop())));
  s.top = std::move(bad);
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
}

TEST(Validate, RejectsEmptyComposite) {
  Specification s;
  s.name = "S";
  s.top = seq("T", {});
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
}

TEST(Validate, RejectsBreakOutsideLoop) {
  Specification s;
  s.name = "S";
  s.top = leaf("T", block(break_()));
  DiagnosticSink diags;
  EXPECT_FALSE(validate(s, diags));
}

TEST(Validate, AcceptsBreakInsideLoop) {
  Specification s;
  s.name = "S";
  s.top = leaf("T", block(loop(block(break_()))));
  DiagnosticSink diags;
  EXPECT_TRUE(validate(s, diags)) << diags.str();
}

TEST(Validate, CallChecks) {
  Specification s;
  s.name = "S";
  s.vars.push_back(var("x"));
  Procedure p;
  p.name = "P";
  p.params.push_back(in_param("a"));
  p.params.push_back(out_param("r"));
  p.body = block(assign("r", add(ref("a"), lit(1))));
  s.procedures.push_back(std::move(p));

  // good call
  s.top = leaf("T", block(call("P", args(lit(1), ref("x")))));
  DiagnosticSink d1;
  EXPECT_TRUE(validate(s, d1)) << d1.str();

  // arity mismatch
  s.top = leaf("T", block(call("P", args(lit(1)))));
  DiagnosticSink d2;
  EXPECT_FALSE(validate(s, d2));

  // out arg must be a name
  s.top = leaf("T", block(call("P", args(lit(1), lit(2)))));
  DiagnosticSink d3;
  EXPECT_FALSE(validate(s, d3));

  // unknown callee
  s.top = leaf("T", block(call("Q", args())));
  DiagnosticSink d4;
  EXPECT_FALSE(validate(s, d4));
}

TEST(Validate, WarnsOnSignalFreeWait) {
  Specification s;
  s.name = "S";
  s.vars.push_back(var("x"));
  s.top = leaf("T", block(wait(gt(ref("x"), lit(0)))));
  DiagnosticSink diags;
  EXPECT_TRUE(validate(s, diags));  // warning, not error
  EXPECT_NE(diags.str().find("wait condition references no signal"),
            std::string::npos);
}

TEST(Validate, ValidateOrThrowThrowsWithDiagnostics) {
  Specification s;
  s.name = "Broken";
  s.top = leaf("T", block(assign("ghost", lit(1))));
  EXPECT_THROW(validate_or_throw(s), SpecError);
}

}  // namespace
}  // namespace specsyn
