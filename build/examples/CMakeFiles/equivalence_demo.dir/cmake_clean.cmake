file(REMOVE_RECURSE
  "CMakeFiles/equivalence_demo.dir/equivalence_demo.cpp.o"
  "CMakeFiles/equivalence_demo.dir/equivalence_demo.cpp.o.d"
  "equivalence_demo"
  "equivalence_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
