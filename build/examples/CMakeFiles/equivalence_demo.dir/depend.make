# Empty dependencies file for equivalence_demo.
# This may be replaced when dependencies are built.
