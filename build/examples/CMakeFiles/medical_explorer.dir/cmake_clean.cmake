file(REMOVE_RECURSE
  "CMakeFiles/medical_explorer.dir/medical_explorer.cpp.o"
  "CMakeFiles/medical_explorer.dir/medical_explorer.cpp.o.d"
  "medical_explorer"
  "medical_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
