# Empty dependencies file for medical_explorer.
# This may be replaced when dependencies are built.
