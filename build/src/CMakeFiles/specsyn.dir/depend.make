# Empty dependencies file for specsyn.
# This may be replaced when dependencies are built.
