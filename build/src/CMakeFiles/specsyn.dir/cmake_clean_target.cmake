file(REMOVE_RECURSE
  "libspecsyn.a"
)
