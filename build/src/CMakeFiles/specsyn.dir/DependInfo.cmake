
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimate/cost.cpp" "src/CMakeFiles/specsyn.dir/estimate/cost.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/estimate/cost.cpp.o.d"
  "/root/repo/src/estimate/profile.cpp" "src/CMakeFiles/specsyn.dir/estimate/profile.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/estimate/profile.cpp.o.d"
  "/root/repo/src/estimate/rates.cpp" "src/CMakeFiles/specsyn.dir/estimate/rates.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/estimate/rates.cpp.o.d"
  "/root/repo/src/estimate/static_profile.cpp" "src/CMakeFiles/specsyn.dir/estimate/static_profile.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/estimate/static_profile.cpp.o.d"
  "/root/repo/src/graph/access_graph.cpp" "src/CMakeFiles/specsyn.dir/graph/access_graph.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/graph/access_graph.cpp.o.d"
  "/root/repo/src/parser/lexer.cpp" "src/CMakeFiles/specsyn.dir/parser/lexer.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/parser/lexer.cpp.o.d"
  "/root/repo/src/parser/parser.cpp" "src/CMakeFiles/specsyn.dir/parser/parser.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/parser/parser.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/CMakeFiles/specsyn.dir/partition/partition.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/partition/partition.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/CMakeFiles/specsyn.dir/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/partition/partitioner.cpp.o.d"
  "/root/repo/src/printer/dot.cpp" "src/CMakeFiles/specsyn.dir/printer/dot.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/printer/dot.cpp.o.d"
  "/root/repo/src/printer/printer.cpp" "src/CMakeFiles/specsyn.dir/printer/printer.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/printer/printer.cpp.o.d"
  "/root/repo/src/printer/report.cpp" "src/CMakeFiles/specsyn.dir/printer/report.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/printer/report.cpp.o.d"
  "/root/repo/src/printer/vhdl.cpp" "src/CMakeFiles/specsyn.dir/printer/vhdl.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/printer/vhdl.cpp.o.d"
  "/root/repo/src/refine/address_map.cpp" "src/CMakeFiles/specsyn.dir/refine/address_map.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/address_map.cpp.o.d"
  "/root/repo/src/refine/arbiter_gen.cpp" "src/CMakeFiles/specsyn.dir/refine/arbiter_gen.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/arbiter_gen.cpp.o.d"
  "/root/repo/src/refine/bus_interface_gen.cpp" "src/CMakeFiles/specsyn.dir/refine/bus_interface_gen.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/bus_interface_gen.cpp.o.d"
  "/root/repo/src/refine/bus_plan.cpp" "src/CMakeFiles/specsyn.dir/refine/bus_plan.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/bus_plan.cpp.o.d"
  "/root/repo/src/refine/control_refine.cpp" "src/CMakeFiles/specsyn.dir/refine/control_refine.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/control_refine.cpp.o.d"
  "/root/repo/src/refine/data_refine.cpp" "src/CMakeFiles/specsyn.dir/refine/data_refine.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/data_refine.cpp.o.d"
  "/root/repo/src/refine/inliner.cpp" "src/CMakeFiles/specsyn.dir/refine/inliner.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/inliner.cpp.o.d"
  "/root/repo/src/refine/memory_gen.cpp" "src/CMakeFiles/specsyn.dir/refine/memory_gen.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/memory_gen.cpp.o.d"
  "/root/repo/src/refine/protocol.cpp" "src/CMakeFiles/specsyn.dir/refine/protocol.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/protocol.cpp.o.d"
  "/root/repo/src/refine/refiner.cpp" "src/CMakeFiles/specsyn.dir/refine/refiner.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/refiner.cpp.o.d"
  "/root/repo/src/refine/selector.cpp" "src/CMakeFiles/specsyn.dir/refine/selector.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/refine/selector.cpp.o.d"
  "/root/repo/src/sim/equivalence.cpp" "src/CMakeFiles/specsyn.dir/sim/equivalence.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/sim/equivalence.cpp.o.d"
  "/root/repo/src/sim/interp.cpp" "src/CMakeFiles/specsyn.dir/sim/interp.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/sim/interp.cpp.o.d"
  "/root/repo/src/sim/signal_table.cpp" "src/CMakeFiles/specsyn.dir/sim/signal_table.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/sim/signal_table.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/specsyn.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/value.cpp" "src/CMakeFiles/specsyn.dir/sim/value.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/sim/value.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/specsyn.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/sim/vcd.cpp.o.d"
  "/root/repo/src/spec/behavior.cpp" "src/CMakeFiles/specsyn.dir/spec/behavior.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/spec/behavior.cpp.o.d"
  "/root/repo/src/spec/builder.cpp" "src/CMakeFiles/specsyn.dir/spec/builder.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/spec/builder.cpp.o.d"
  "/root/repo/src/spec/expr.cpp" "src/CMakeFiles/specsyn.dir/spec/expr.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/spec/expr.cpp.o.d"
  "/root/repo/src/spec/specification.cpp" "src/CMakeFiles/specsyn.dir/spec/specification.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/spec/specification.cpp.o.d"
  "/root/repo/src/spec/stmt.cpp" "src/CMakeFiles/specsyn.dir/spec/stmt.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/spec/stmt.cpp.o.d"
  "/root/repo/src/spec/transform.cpp" "src/CMakeFiles/specsyn.dir/spec/transform.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/spec/transform.cpp.o.d"
  "/root/repo/src/spec/validate.cpp" "src/CMakeFiles/specsyn.dir/spec/validate.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/spec/validate.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/specsyn.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/workloads/answering.cpp" "src/CMakeFiles/specsyn.dir/workloads/answering.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/workloads/answering.cpp.o.d"
  "/root/repo/src/workloads/medical.cpp" "src/CMakeFiles/specsyn.dir/workloads/medical.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/workloads/medical.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/CMakeFiles/specsyn.dir/workloads/synthetic.cpp.o" "gcc" "src/CMakeFiles/specsyn.dir/workloads/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
