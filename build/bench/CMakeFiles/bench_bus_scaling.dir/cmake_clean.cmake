file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_scaling.dir/bench_bus_scaling.cpp.o"
  "CMakeFiles/bench_bus_scaling.dir/bench_bus_scaling.cpp.o.d"
  "bench_bus_scaling"
  "bench_bus_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
