# Empty compiler generated dependencies file for bench_bus_scaling.
# This may be replaced when dependencies are built.
