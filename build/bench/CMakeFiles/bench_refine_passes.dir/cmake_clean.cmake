file(REMOVE_RECURSE
  "CMakeFiles/bench_refine_passes.dir/bench_refine_passes.cpp.o"
  "CMakeFiles/bench_refine_passes.dir/bench_refine_passes.cpp.o.d"
  "bench_refine_passes"
  "bench_refine_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refine_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
