# Empty dependencies file for bench_refine_passes.
# This may be replaced when dependencies are built.
