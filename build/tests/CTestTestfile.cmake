# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_refine[1]_include.cmake")
include("/root/repo/build/tests/test_medical[1]_include.cmake")
include("/root/repo/build/tests/test_estimate[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_inliner[1]_include.cmake")
include("/root/repo/build/tests/test_vhdl[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_sim_edge[1]_include.cmake")
include("/root/repo/build/tests/test_static[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_busplan[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_selector[1]_include.cmake")
include("/root/repo/build/tests/test_parser_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_refine_edge[1]_include.cmake")
