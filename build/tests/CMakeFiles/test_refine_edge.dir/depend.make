# Empty dependencies file for test_refine_edge.
# This may be replaced when dependencies are built.
