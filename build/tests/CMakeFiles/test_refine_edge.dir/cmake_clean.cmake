file(REMOVE_RECURSE
  "CMakeFiles/test_refine_edge.dir/test_refine_edge.cpp.o"
  "CMakeFiles/test_refine_edge.dir/test_refine_edge.cpp.o.d"
  "test_refine_edge"
  "test_refine_edge.pdb"
  "test_refine_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refine_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
