file(REMOVE_RECURSE
  "CMakeFiles/test_medical.dir/test_medical.cpp.o"
  "CMakeFiles/test_medical.dir/test_medical.cpp.o.d"
  "test_medical"
  "test_medical.pdb"
  "test_medical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_medical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
