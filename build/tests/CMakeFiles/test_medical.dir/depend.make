# Empty dependencies file for test_medical.
# This may be replaced when dependencies are built.
