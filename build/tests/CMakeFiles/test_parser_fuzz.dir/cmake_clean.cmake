file(REMOVE_RECURSE
  "CMakeFiles/test_parser_fuzz.dir/test_parser_fuzz.cpp.o"
  "CMakeFiles/test_parser_fuzz.dir/test_parser_fuzz.cpp.o.d"
  "test_parser_fuzz"
  "test_parser_fuzz.pdb"
  "test_parser_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
