# Empty compiler generated dependencies file for test_busplan.
# This may be replaced when dependencies are built.
