file(REMOVE_RECURSE
  "CMakeFiles/test_busplan.dir/test_busplan.cpp.o"
  "CMakeFiles/test_busplan.dir/test_busplan.cpp.o.d"
  "test_busplan"
  "test_busplan.pdb"
  "test_busplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_busplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
