# Empty dependencies file for test_vhdl.
# This may be replaced when dependencies are built.
