file(REMOVE_RECURSE
  "CMakeFiles/test_static.dir/test_static.cpp.o"
  "CMakeFiles/test_static.dir/test_static.cpp.o.d"
  "test_static"
  "test_static.pdb"
  "test_static[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
