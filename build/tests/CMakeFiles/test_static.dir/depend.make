# Empty dependencies file for test_static.
# This may be replaced when dependencies are built.
