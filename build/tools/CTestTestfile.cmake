# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_check "/root/repo/build/tools/specsyn" "check" "/root/repo/examples/specs/producer_consumer.spec")
set_tests_properties(cli_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/specsyn" "simulate" "/root/repo/examples/specs/traffic_light.spec")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_refine_verify "/root/repo/build/tools/specsyn" "refine" "/root/repo/examples/specs/producer_consumer.spec" "--assign" "Consume=1" "--model" "3" "--verify" "-o" "/root/repo/build/pc_m3.spec")
set_tests_properties(cli_refine_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_refine_vhdl "/root/repo/build/tools/specsyn" "refine" "/root/repo/examples/specs/traffic_light.spec" "--assign" "Controller=1" "--model" "2" "--vhdl" "--verify" "-o" "/root/repo/build/tl_m2.vhd")
set_tests_properties(cli_refine_vhdl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_graph "/root/repo/build/tools/specsyn" "graph" "/root/repo/examples/specs/traffic_light.spec")
set_tests_properties(cli_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_refine_ratio_bs "/root/repo/build/tools/specsyn" "refine" "/root/repo/examples/specs/producer_consumer.spec" "--ratio" "balanced" "--model" "4" "--protocol" "bs" "--verify" "-o" "/root/repo/build/pc_m4.spec")
set_tests_properties(cli_refine_ratio_bs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_refine_report "/root/repo/build/tools/specsyn" "refine" "/root/repo/examples/specs/producer_consumer.spec" "--assign" "Consume=1" "--model" "4" "--report" "-o" "/root/repo/build/pc_report.md")
set_tests_properties(cli_refine_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate_vcd "/root/repo/build/tools/specsyn" "simulate" "/root/repo/examples/specs/traffic_light.spec" "--vcd" "/root/repo/build/tl.vcd")
set_tests_properties(cli_simulate_vcd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
