file(REMOVE_RECURSE
  "CMakeFiles/specsyn-cli.dir/specsyn_cli.cpp.o"
  "CMakeFiles/specsyn-cli.dir/specsyn_cli.cpp.o.d"
  "specsyn"
  "specsyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specsyn-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
