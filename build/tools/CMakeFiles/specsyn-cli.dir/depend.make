# Empty dependencies file for specsyn-cli.
# This may be replaced when dependencies are built.
