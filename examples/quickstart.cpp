// Quickstart: the complete model-refinement flow on the paper's Section 2
// example, in ~100 lines.
//
//   1. Write a functional specification in SpecLang (behaviors A, B, C and
//      variable x — Figure 1(a)).
//   2. Derive its access graph (channels).
//   3. Allocate a processor + ASIC and partition: A, C -> PROC; B, x -> ASIC
//      (Figure 1(c)).
//   4. Refine to an implementation model (Model1: shared bus + global
//      memories) — control stubs, protocol transfers, memories, arbiter all
//      inserted automatically (Figure 1(d)).
//   5. Simulate both specifications and check functional equivalence.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "graph/access_graph.h"
#include "parser/parser.h"
#include "partition/partition.h"
#include "printer/printer.h"
#include "refine/refiner.h"
#include "sim/equivalence.h"

using namespace specsyn;

static const char* kSpec = R"(
spec Fig1;

observable var x : int16;
observable var r : int16;

behavior Main : seq {
  behavior A : leaf {
    x := 3;
  }
  behavior B : leaf {
    r := x + 10;
  }
  behavior C : leaf {
    r := x + 100;
  }
  transitions {
    A -> B when x > 1;
    A -> C when x < 1;
    B -> complete;
    C -> complete;
  }
}
)";

int main() {
  // 1. Parse the functional model.
  DiagnosticSink diags;
  auto parsed = parse_spec(kSpec, diags);
  if (!parsed) {
    std::fprintf(stderr, "parse failed:\n%s", diags.str().c_str());
    return 1;
  }
  Specification spec = std::move(*parsed);
  validate_or_throw(spec);
  std::printf("parsed '%s': %zu behaviors, %zu variables, %zu lines\n",
              spec.name.c_str(), spec.all_behaviors().size(),
              spec.all_vars().size(), count_lines(print(spec)));

  // 2. Access graph: behaviors, variables and the channels between them.
  AccessGraph graph = build_access_graph(spec);
  std::printf("access graph: %zu data channel pairs, %zu control arcs\n",
              graph.data_channel_pairs(), graph.control_channels().size());

  // 3. Allocation + partition (Figure 1(b)/(c)).
  Partition part(spec, Allocation::proc_plus_asic());
  part.assign_behavior("B", 1);  // B -> ASIC
  part.assign_var("x", 1);       // x -> ASIC memory
  part.auto_assign_vars(graph);
  auto [local_vars, global_vars] = part.local_global_counts(graph);
  std::printf("partition: %zu local / %zu global variables, cut behaviors:",
              local_vars, global_vars);
  for (const auto& b : part.cut_behaviors()) std::printf(" %s", b.c_str());
  std::printf("\n");

  // 4. Refine to Model1 (single shared bus, global memories).
  RefineConfig cfg;
  cfg.model = ImplModel::Model1;
  RefineResult refined = refine(part, graph, cfg);
  std::printf("\nrefined to %s: %zu lines (%zux growth), %zu memories, "
              "%zu arbiters, %zu inlined protocol sites\n",
              to_string(cfg.model), count_lines(print(refined.refined)),
              count_lines(print(refined.refined)) / count_lines(print(spec)),
              refined.stats.memories, refined.stats.arbiters,
              refined.stats.inlined_sites);

  // Show the generated control stub — the B_CTRL of Figure 4.
  if (const Behavior* stub = refined.refined.find_behavior("B_CTRL")) {
    std::printf("\ngenerated control stub (Figure 4):\n%s",
                print(*stub).c_str());
  }

  // 5. Both models must behave identically.
  EquivalenceReport rep = check_equivalence(spec, refined.refined);
  std::printf("\nfunctional equivalence: %s\n", rep.summary().c_str());
  std::printf("original end: t=%llu, refined end: t=%llu "
              "(protocol overhead stretches time, never values)\n",
              static_cast<unsigned long long>(rep.original_result.end_time),
              static_cast<unsigned long long>(rep.refined_result.end_time));
  std::printf("final x=%llu r=%llu\n",
              static_cast<unsigned long long>(
                  rep.refined_result.final_vars.at("x")),
              static_cast<unsigned long long>(
                  rep.refined_result.final_vars.at("r")));
  return rep.equivalent ? 0 : 1;
}
