// Message passing deep-dive: Model4's bus interfaces (Figure 8).
//
// Builds a two-component design where behavior B1 on Component1 reads a
// variable y stored in Component2's local memory, refines it to Model4, and
// traces the resulting three-bus transfer path:
//      B1 -> [request bus] -> IFACE_1_OUT -> [inter bus] -> IFACE_2_IN
//         -> [local bus 2] -> LMEM_2
// A signal observer prints the bus handshakes as they happen so the
// generated protocol can be watched end to end.
#include <cstdio>

#include "graph/access_graph.h"
#include "printer/printer.h"
#include "refine/refiner.h"
#include "sim/equivalence.h"
#include "spec/builder.h"

using namespace specsyn;
using namespace specsyn::build;

namespace {

Specification make_spec() {
  Specification s;
  s.name = "Fig8";
  s.vars.push_back(var("y", Type::u16(), 41, /*observable=*/true));
  s.vars.push_back(var("out1", Type::u16(), 0, /*observable=*/true));
  auto b1 = leaf("B1", block(assign("out1", add(ref("y"), lit(1)))));
  auto b2 = leaf("B2", block(assign("y", add(ref("y"), lit(100)))));
  s.top = seq("Top", behaviors(std::move(b1), std::move(b2)));
  return s;
}

/// Prints every change of the bus control signals, indented per bus.
class BusTracer : public SimObserver {
 public:
  void on_signal_change(const std::string& sig, uint64_t t,
                        uint64_t v) override {
    // Only the handshake lines; data/addr values shown on start edges.
    if (sig.find("_start") == std::string::npos &&
        sig.find("_done") == std::string::npos) {
      return;
    }
    if (printed_ > 60) return;  // keep the demo readable
    std::printf("  t=%-5llu %s = %llu\n", static_cast<unsigned long long>(t),
                sig.c_str(), static_cast<unsigned long long>(v));
    ++printed_;
  }

 private:
  int printed_ = 0;
};

}  // namespace

int main() {
  Specification spec = make_spec();
  AccessGraph graph = build_access_graph(spec);

  Partition part(spec, Allocation::proc_plus_asic());
  part.assign_behavior("B2", 1);  // B2 and y live on Component2 (ASIC)
  part.assign_var("y", 1);
  part.auto_assign_vars(graph);

  RefineConfig cfg;
  cfg.model = ImplModel::Model4;
  RefineResult r = refine(part, graph, cfg);

  std::printf("Model4 structure for the Figure 8 scenario:\n");
  for (const BusDecl& b : r.plan.buses()) {
    std::printf("  bus %-14s role=%s\n", b.name.c_str(), to_string(b.role));
  }
  for (const MemoryModule& m : r.plan.memories()) {
    std::printf("  memory %-11s on %s holding:", m.name.c_str(),
                m.port_buses.front().first.c_str());
    for (const auto& v : m.vars) std::printf(" %s", v.c_str());
    std::printf("\n");
  }
  for (const InterfacePlan& ip : r.plan.interfaces()) {
    if (ip.has_outbound) std::printf("  interface %s\n", ip.outbound.c_str());
    if (ip.has_inbound) std::printf("  interface %s\n", ip.inbound.c_str());
  }
  std::printf("\nremote read route for B1 (PROC) accessing y (ASIC):");
  for (const std::string& leg : r.plan.route(0, "y")) {
    std::printf(" -> %s", leg.c_str());
  }
  std::printf("\n\nbus handshakes during simulation (first transfers):\n");

  Simulator sim(r.refined);
  BusTracer tracer;
  sim.add_observer(&tracer);
  SimResult res = sim.run();

  std::printf("\nsimulation %s at t=%llu; out1=%llu (expected 42), y=%llu "
              "(expected 141)\n",
              res.status == SimResult::Status::Quiescent ? "quiesced"
                                                         : "hit max cycles",
              static_cast<unsigned long long>(res.end_time),
              static_cast<unsigned long long>(res.final_vars.at("out1")),
              static_cast<unsigned long long>(res.final_vars.at("y")));

  EquivalenceReport rep = check_equivalence(spec, r.refined);
  std::printf("equivalence vs functional model: %s\n", rep.summary().c_str());
  return rep.equivalent ? 0 : 1;
}
