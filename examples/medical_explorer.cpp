// Medical explorer: the paper's Section 5 experiment as an interactive-style
// report — explores all four implementation models for each of the three
// partitions of the bladder-volume system and recommends a model per design,
// the way a designer would use SpecSyn's refinement to compare communication
// styles.
//
// Usage: ./build/examples/medical_explorer [design]   (design in 1..3;
//        default: all three)
#include <cstdio>
#include <cstdlib>

#include "estimate/cost.h"
#include "estimate/profile.h"
#include "estimate/rates.h"
#include "obs/bus_trace.h"
#include "obs/metrics.h"
#include "printer/printer.h"
#include "refine/refiner.h"
#include "refine/selector.h"
#include "sim/simulator.h"
#include "workloads/medical.h"

using namespace specsyn;

namespace {

struct ModelOutcome {
  ImplModel model;
  double peak_mbps;
  double cost;
  size_t lines;
  size_t buses;
};

/// Simulates the refined model with a BusTracer attached and returns the
/// measured bus metrics — the dynamic counterpart of the static rate
/// estimates above (estimate/rates.h predicts, the tracer observes).
MetricsReport measure(const Specification& refined) {
  BusTracer tracer(refined);
  Simulator sim(refined, SimConfig{});
  sim.add_slot_observer(&tracer);
  sim.run();
  return MetricsReport::from(tracer);
}

void explore(const Specification& spec, const AccessGraph& graph,
             const ProfileResult& prof, int design) {
  auto d = make_medical_design(spec, graph, design);
  std::printf("\nDesign%d: %zu local / %zu global variables\n", design,
              d.local_vars, d.global_vars);

  std::vector<ModelOutcome> outcomes;
  for (ImplModel m : {ImplModel::Model1, ImplModel::Model2, ImplModel::Model3,
                      ImplModel::Model4}) {
    RefineConfig cfg;
    cfg.model = m;
    RefineResult r = refine(d.partition, graph, cfg);
    BusRateReport rates = bus_rates(prof, d.partition, r.plan, 100e6);
    CostReport cost = estimate_cost(r, rates);
    outcomes.push_back({m, rates.max_rate(), cost.total,
                        count_lines(print(r.refined)), r.stats.buses});
    std::printf("  %s: peak bus %7.0f Mbit/s, %zu buses, cost %7.1f, "
                "%zu lines\n",
                to_string(m), rates.max_rate(), r.stats.buses, cost.total,
                outcomes.back().lines);

    // Measured (simulated) bus traffic alongside the static estimate: which
    // bus actually saturates, and how long masters fight the arbiter for it.
    const MetricsReport measured = measure(r.refined);
    double peak_util = 0.0;
    uint64_t contention = 0;
    const MetricsReport::BusRow* busiest = nullptr;
    for (const MetricsReport::BusRow& b : measured.buses) {
      contention += b.contention_cycles;
      if (b.utilization_pct > peak_util) {
        peak_util = b.utilization_pct;
        busiest = &b;
      }
    }
    std::printf("      measured: %llu cycles, busiest bus %s at %.1f%% "
                "util, contention %llu cycles\n",
                static_cast<unsigned long long>(measured.end_time),
                busiest != nullptr ? busiest->name.c_str() : "-", peak_util,
                static_cast<unsigned long long>(contention));
  }

  // Recommend via the automatic selector: feasible under a max bus-rate
  // constraint, then cheapest (exactly the paper's closing advice).
  SelectionConstraints constraints;
  constraints.max_bus_mbps = 4000;  // designer's bus-technology limit
  SelectionResult sel = select_model(d.partition, graph, prof, constraints);
  if (const Candidate* rec = sel.recommended()) {
    std::printf("  -> recommended under %.0f Mbit/s bus limit: %s "
                "(peak %.0f, cost %.1f)\n",
                constraints.max_bus_mbps, to_string(rec->config.model),
                rec->peak_mbps, rec->cost);
  } else {
    std::printf("  -> no model satisfies the %.0f Mbit/s bus limit\n",
                constraints.max_bus_mbps);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Specification spec = make_medical_system();
  AccessGraph graph = build_access_graph(spec);
  std::printf("medical system: %zu behaviors, %zu variables, %zu channels, "
              "%zu-line specification\n",
              spec.all_behaviors().size(), spec.all_vars().size(),
              graph.data_channel_pairs(), count_lines(print(spec)));
  ProfileResult prof = profile_spec(spec);
  std::printf("profiled: %llu cycles end-to-end, %zu dynamic channels\n",
              static_cast<unsigned long long>(prof.sim.end_time),
              prof.channel_count());

  if (argc > 1) {
    explore(spec, graph, prof, std::atoi(argv[1]));
  } else {
    for (int design = 1; design <= 3; ++design) {
      explore(spec, graph, prof, design);
    }
  }
  std::printf(
      "\nconclusion (paper, Section 5): the best communication model is both\n"
      "application- and partition-dependent — exploring all of them per\n"
      "design is exactly what automatic model refinement buys.\n");
  return 0;
}
