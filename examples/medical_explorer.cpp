// Medical explorer: the paper's Section 5 experiment as an interactive-style
// report — explores all four implementation models for each of the three
// partitions of the bladder-volume system and recommends a model per design,
// the way a designer would use SpecSyn's refinement to compare communication
// styles.
//
// The per-model refine/price/simulate loop is the batch sweep engine
// (batch/sweep.h): each design fans its four models over a shared worker
// pool, and the printed numbers are bit-identical to a serial run by the
// engine's determinism contract.
//
// Usage: ./build/examples/medical_explorer [design]   (design in 1..3;
//        default: all three)
#include <cstdio>
#include <cstdlib>

#include "batch/sweep.h"
#include "batch/thread_pool.h"
#include "estimate/profile.h"
#include "graph/access_graph.h"
#include "printer/printer.h"
#include "refine/selector.h"
#include "workloads/medical.h"

using namespace specsyn;

namespace {

void explore(const Specification& spec, const AccessGraph& graph,
             const ProfileResult& prof, int design, batch::ThreadPool& pool) {
  auto d = make_medical_design(spec, graph, design);
  std::printf("\nDesign%d: %zu local / %zu global variables\n", design,
              d.local_vars, d.global_vars);

  // Fan the four models over the pool: refine, static rates + cost, and a
  // measured (BusTracer) simulation per model, all in one engine call.
  batch::SweepOptions opts;  // defaults: 100 MHz clock, lowered interpreter
  const batch::SweepReport swept = batch::run_sweep(
      spec, d.partition, graph, prof, batch::model_axis(), opts, pool);

  // Print in model order (rows come back ranked; matrix_index restores the
  // Model1..Model4 axis).
  std::vector<const batch::SweepRow*> by_model(swept.rows.size());
  for (const batch::SweepRow& r : swept.rows) by_model[r.matrix_index] = &r;
  for (const batch::SweepRow* r : by_model) {
    if (!r->refine_ok) {
      std::printf("  %s: FAILED: %s\n", to_string(r->point.config.model),
                  r->error.c_str());
      continue;
    }
    std::printf("  %s: peak bus %7.0f Mbit/s, %zu buses, cost %7.1f, "
                "%zu lines\n",
                to_string(r->point.config.model), r->peak_mbps, r->buses,
                r->cost, r->lines);

    // Measured (simulated) bus traffic alongside the static estimate: which
    // bus actually saturates, and how long masters fight the arbiter for it.
    std::printf("      measured: %llu cycles, busiest bus %s at %.1f%% "
                "util, contention %llu cycles\n",
                static_cast<unsigned long long>(r->cycles),
                r->busiest_bus.empty() ? "-" : r->busiest_bus.c_str(),
                r->peak_util_pct,
                static_cast<unsigned long long>(r->contention_cycles));
  }

  // Recommend via the automatic selector: feasible under a max bus-rate
  // constraint, then cheapest (exactly the paper's closing advice).
  SelectionConstraints constraints;
  constraints.max_bus_mbps = 4000;  // designer's bus-technology limit
  SelectionResult sel = select_model(d.partition, graph, prof, constraints);
  if (const Candidate* rec = sel.recommended()) {
    std::printf("  -> recommended under %.0f Mbit/s bus limit: %s "
                "(peak %.0f, cost %.1f)\n",
                constraints.max_bus_mbps, to_string(rec->config.model),
                rec->peak_mbps, rec->cost);
  } else {
    std::printf("  -> no model satisfies the %.0f Mbit/s bus limit\n",
                constraints.max_bus_mbps);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Specification spec = make_medical_system();
  AccessGraph graph = build_access_graph(spec);
  std::printf("medical system: %zu behaviors, %zu variables, %zu channels, "
              "%zu-line specification\n",
              spec.all_behaviors().size(), spec.all_vars().size(),
              graph.data_channel_pairs(), count_lines(print(spec)));
  ProfileResult prof = profile_spec(spec);
  std::printf("profiled: %llu cycles end-to-end, %zu dynamic channels\n",
              static_cast<unsigned long long>(prof.sim.end_time),
              prof.channel_count());

  batch::ThreadPool pool(batch::ThreadPool::default_workers());
  if (argc > 1) {
    explore(spec, graph, prof, std::atoi(argv[1]), pool);
  } else {
    for (int design = 1; design <= 3; ++design) {
      explore(spec, graph, prof, design, pool);
    }
  }
  std::printf(
      "\nconclusion (paper, Section 5): the best communication model is both\n"
      "application- and partition-dependent — exploring all of them per\n"
      "design is exactly what automatic model refinement buys.\n");
  return 0;
}
