// Equivalence demo: refinement as a *verified* transformation.
//
// Generates seeded random specifications, partitions them pseudo-randomly,
// refines each under all four implementation models and both protocol
// styles, and checks functional equivalence — the workflow a downstream user
// would run to trust the refiner on their own specification. Also exports
// the access graph of the first spec as Graphviz DOT.
//
// Usage: ./build/examples/equivalence_demo [num_seeds]   (default 5)
#include <cstdio>
#include <cstdlib>

#include "printer/dot.h"
#include "refine/refiner.h"
#include "sim/equivalence.h"
#include "workloads/synthetic.h"

using namespace specsyn;

int main(int argc, char** argv) {
  const uint64_t seeds = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  int failures = 0;

  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SyntheticOptions opts;
    opts.seed = seed;
    opts.leaf_behaviors = 4 + seed % 6;
    opts.variables = 6 + seed % 8;
    opts.conc_percent = seed % 2 ? 30 : 0;
    Specification spec = make_synthetic_spec(opts);
    AccessGraph graph = build_access_graph(spec);

    Partition part(spec, Allocation::proc_plus_asic());
    uint64_t h = seed;
    bool any1 = false;
    spec.top->for_each([&](const Behavior& b) {
      if (!b.is_leaf()) return;
      h = h * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((h >> 40) & 1) {
        part.assign_behavior(b.name, 1);
        any1 = true;
      }
    });
    if (!any1) {
      // Ensure a real two-component partition.
      spec.top->for_each([&](const Behavior& b) {
        if (!any1 && b.is_leaf()) {
          part.assign_behavior(b.name, 1);
          any1 = true;
        }
      });
    }
    part.auto_assign_vars(graph);

    if (seed == 1) {
      std::printf("access graph of seed 1 (Graphviz DOT):\n%s\n",
                  to_dot(graph, part).c_str());
    }

    std::printf("seed %llu (%zu behaviors, %zu vars):",
                static_cast<unsigned long long>(seed),
                spec.all_behaviors().size(), spec.all_vars().size());
    for (ImplModel m : {ImplModel::Model1, ImplModel::Model2,
                        ImplModel::Model3, ImplModel::Model4}) {
      for (ProtocolStyle p :
           {ProtocolStyle::FullHandshake, ProtocolStyle::ByteSerial}) {
        RefineConfig cfg;
        cfg.model = m;
        cfg.protocol = p;
        RefineResult r = refine(part, graph, cfg);
        EquivalenceOptions eo;
        eo.compare_write_traces = p == ProtocolStyle::FullHandshake;
        EquivalenceReport rep = check_equivalence(spec, r.refined, eo);
        std::printf(" %s", rep.equivalent ? "ok" : "FAIL");
        if (!rep.equivalent) {
          ++failures;
          std::printf("\n  %s/%s: %s", to_string(m), to_string(p),
                      rep.summary().c_str());
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\n%s\n", failures == 0
                            ? "all refinements functionally equivalent"
                            : "EQUIVALENCE FAILURES FOUND");
  return failures == 0 ? 0 : 1;
}
